"""Global history register (GHR) and branch history buffer (BHB).

Both are shift registers (paper Section II-A):

* the GHR records the taken/not-taken outcomes of recent conditional branches
  and feeds the 2-level PHT addressing mode as well as TAGE/Perceptron
  histories, and
* the BHB accumulates branch *context* — on every taken direct branch or call
  the branch and target addresses are folded (XOR) into the register — and is
  used by the indirect predictor (BTB addressing mode 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class GlobalHistoryRegister:
    """Fixed-width shift register of conditional-branch outcomes."""

    bits: int = 18
    value: int = 0

    def push(self, taken: bool) -> None:
        """Shift in the newest outcome (1 = taken)."""
        self.value = ((self.value << 1) | int(taken)) & ((1 << self.bits) - 1)

    def snapshot(self) -> int:
        return self.value

    def restore(self, value: int) -> None:
        self.value = value & ((1 << self.bits) - 1)

    def clear(self) -> None:
        self.value = 0


@dataclass(slots=True)
class BranchHistoryBuffer:
    """Branch-context register updated by folding executed branch addresses.

    The update rule follows the public reverse engineering of Intel's BHB
    (shift by two, XOR in selected source/target address bits), generalised to
    a parameterised width.
    """

    bits: int = 58
    value: int = 0

    def push(self, ip: int, target: int) -> None:
        mask = (1 << self.bits) - 1
        mixed = (ip & 0x3F_FFFF) ^ ((target & 0x3F_FFFF) << 1)
        self.value = (((self.value << 2) & mask) ^ mixed) & mask

    def snapshot(self) -> int:
        return self.value

    def restore(self, value: int) -> None:
        self.value = value & ((1 << self.bits) - 1)

    def clear(self) -> None:
        self.value = 0


@dataclass(slots=True)
class FoldedHistory:
    """Circularly-folded view of a long global history, as used by TAGE.

    TAGE tables use history lengths much longer than their index width; the
    standard implementation keeps an incrementally folded value.  For clarity
    (and because our histories are at most a few hundred bits) we re-fold from
    an explicit outcome list on demand.
    """

    history_length: int
    folded_bits: int

    def fold(self, outcomes: list[bool]) -> int:
        """Fold the most recent ``history_length`` outcomes to ``folded_bits`` bits."""
        if self.folded_bits <= 0:
            return 0
        value = 0
        recent = outcomes[-self.history_length:] if self.history_length else []
        for position, outcome in enumerate(recent):
            if outcome:
                value ^= 1 << (position % self.folded_bits)
        return value


@dataclass(slots=True)
class HistoryState:
    """Bundle of all speculative-history registers owned by one hardware thread."""

    ghr: GlobalHistoryRegister = field(default_factory=GlobalHistoryRegister)
    bhb: BranchHistoryBuffer = field(default_factory=BranchHistoryBuffer)
    #: Unbounded outcome list backing the long TAGE/Perceptron histories.
    outcomes: list[bool] = field(default_factory=list)
    max_outcomes: int = 1024

    def record_conditional(self, taken: bool) -> None:
        self.ghr.push(taken)
        outcomes = self.outcomes
        outcomes.append(taken)
        # Trim in blocks: consumers only ever read the most recent
        # ``max_outcomes`` entries, so deferring the front deletion keeps the
        # per-branch cost amortised O(1) instead of shifting the whole list
        # on every append once the cap is reached.
        if len(outcomes) > self.max_outcomes + 256:
            del outcomes[: len(outcomes) - self.max_outcomes]

    def record_taken_branch(self, ip: int, target: int) -> None:
        self.bhb.push(ip, target)

    def clear(self) -> None:
        self.ghr.clear()
        self.bhb.clear()
        self.outcomes.clear()
