"""Perceptron conditional direction predictor (Jiménez & Lin, HPCA 2001).

The predictor keeps a table of weight vectors.  A branch selects one row
(through the installed :class:`~repro.bpu.mapping.MappingProvider`, so the
STBPU keyed remapping ``Rp`` applies transparently), computes the dot product
of the weights with the recent global-history outcomes (encoded ±1), and
predicts taken when the sum is non-negative.  Training updates the weights on
a misprediction or whenever the magnitude of the sum is below the
length-dependent threshold.

The vector backend replays this predictor through a guarded span stepper
(:class:`repro.sim.vector._PerceptronStepper`) that batches the dot products
from a weight-table snapshot and aborts an access to a live computation when
its row was retrained inside the block.  The stepper mirrors the prediction
and training rules below exactly — any semantic change here must be made
there too, and is pinned by the fast/vector state-parity suite
(``tests/sim/test_vector_parity.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import StructureSizes
from repro.bpu.history import HistoryState
from repro.bpu.mapping import BaselineMappingProvider, MappingProvider


@dataclass(frozen=True, slots=True)
class PerceptronConfig:
    """Size parameters of the perceptron predictor."""

    name: str = "PerceptronBP"
    table_size: int = 1024
    history_length: int = 32
    weight_bits: int = 8

    @property
    def threshold(self) -> int:
        """Optimal training threshold from the original paper: 1.93*h + 14."""
        return int(1.93 * self.history_length + 14)

    @property
    def weight_limit(self) -> int:
        return (1 << (self.weight_bits - 1)) - 1


DEFAULT_PERCEPTRON = PerceptronConfig()


@dataclass(slots=True)
class PerceptronPrediction:
    """Prediction state threaded from predict to update."""

    taken: bool
    row: int
    total: int
    history_bits: tuple[int, ...]


class PerceptronPredictor:
    """Table-of-perceptrons direction predictor."""

    __slots__ = ("config", "name", "sizes", "mapping", "_weights",
                 "_history_length", "_threshold", "_weight_limit")

    def __init__(
        self,
        config: PerceptronConfig = DEFAULT_PERCEPTRON,
        mapping: MappingProvider | None = None,
        sizes: StructureSizes | None = None,
    ):
        self.config = config
        self.name = config.name
        self.sizes = sizes if sizes is not None else StructureSizes()
        self.mapping = mapping if mapping is not None else BaselineMappingProvider(self.sizes)
        # weights[row][0] is the bias weight; the rest pair with history bits.
        self._weights = [
            [0] * (config.history_length + 1) for _ in range(config.table_size)
        ]
        # Per-access invariants hoisted out of the config properties.
        self._history_length = config.history_length
        self._threshold = config.threshold
        self._weight_limit = config.weight_limit

    def _history_bits(self, history: HistoryState) -> tuple[int, ...]:
        length = self._history_length
        outcomes = history.outcomes
        if len(outcomes) >= length:
            return tuple(1 if taken else -1 for taken in outcomes[-length:])
        bits = [1 if taken else -1 for taken in outcomes]
        # Pad older (missing) history with "not taken" so the vector length is fixed.
        return tuple([-1] * (length - len(bits)) + bits)

    def predict(self, ip: int, history: HistoryState) -> PerceptronPrediction:
        row = self.mapping.perceptron_index(ip, self.config.table_size)
        weights = self._weights[row]
        bits = self._history_bits(history)
        total = weights[0]
        position = 1
        for bit in bits:
            if bit > 0:
                total += weights[position]
            else:
                total -= weights[position]
            position += 1
        return PerceptronPrediction(taken=total >= 0, row=row, total=total, history_bits=bits)

    def update(self, prediction: PerceptronPrediction, taken: bool, ip: int = 0) -> None:
        del ip
        needs_training = (prediction.taken != taken) or (abs(prediction.total) <= self._threshold)
        if not needs_training:
            return
        weights = self._weights[prediction.row]
        direction = 1 if taken else -1
        limit = self._weight_limit
        floor = -limit - 1
        weights[0] = max(floor, min(limit, weights[0] + direction))
        position = 1
        for bit in prediction.history_bits:
            delta = direction * bit
            value = weights[position] + delta
            if value > limit:
                value = limit
            elif value < floor:
                value = floor
            weights[position] = value
            position += 1

    def flush(self) -> None:
        for row in self._weights:
            for index in range(len(row)):
                row[index] = 0
