"""Pattern history table (PHT) and the baseline conditional direction predictor.

The paper's baseline models the conditional predictor found in Intel Skylake
as a gshare-like structure with two addressing modes over a 16k-entry table of
2-bit saturating counters: a simple 1-level per-address mode and a 2-level
mode that hashes in the global history register.  We implement that as a
hybrid of a bimodal (1-level) array and a gshare (2-level) array with a
per-branch choice table — the standard generalisation of such designs — which
we refer to throughout the code as ``SKLCond``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import StructureSizes
from repro.bpu.history import HistoryState
from repro.bpu.mapping import BaselineMappingProvider, MappingProvider


@dataclass(slots=True)
class SaturatingCounter:
    """An n-bit saturating counter finite-state machine."""

    bits: int = 2
    value: int = 1  # weakly not-taken

    @property
    def maximum(self) -> int:
        return (1 << self.bits) - 1

    @property
    def taken(self) -> bool:
        return self.value > self.maximum // 2

    def update(self, taken: bool) -> None:
        if taken:
            self.value = min(self.maximum, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class PatternHistoryTable:
    """A flat array of saturating counters addressed by an externally computed index.

    The counters are stored as a plain list of ints rather than
    :class:`SaturatingCounter` objects: a predictor model owns up to three
    16k-entry tables and probes them on every conditional branch, so both
    construction (175 models per full figure grid) and the per-access
    predict/update calls sit on the replay hot path.  The saturation
    semantics are identical to :class:`SaturatingCounter`.
    """

    __slots__ = ("entries", "counter_bits", "_maximum", "_midpoint", "_values")

    def __init__(self, entries: int, counter_bits: int = 2, initial: int | None = None):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.counter_bits = counter_bits
        self._maximum = (1 << counter_bits) - 1
        self._midpoint = self._maximum // 2
        start = initial if initial is not None else self._midpoint
        self._values = [start] * entries

    def predict(self, index: int) -> bool:
        return self._values[index % self.entries] > self._midpoint

    def counter_value(self, index: int) -> int:
        return self._values[index % self.entries]

    def update(self, index: int, taken: bool) -> None:
        values = self._values
        index %= self.entries
        value = values[index]
        if taken:
            if value < self._maximum:
                values[index] = value + 1
        elif value > 0:
            values[index] = value - 1

    def flush(self) -> None:
        self._values = [self._midpoint] * self.entries


@dataclass(slots=True)
class DirectionPrediction:
    """Direction prediction plus which component produced it."""

    taken: bool
    used_two_level: bool
    one_level_index: int
    two_level_index: int


class SKLConditionalPredictor:
    """Hybrid 1-level / 2-level (gshare) conditional direction predictor.

    This is the ``SKLCond`` baseline referenced by the paper's gem5
    evaluation.  A choice table selects, per branch address, whether the
    1-level or 2-level component supplies the prediction; both components are
    trained on every resolved branch (with the usual bias toward the selected
    component in the chooser update).
    """

    __slots__ = ("sizes", "mapping", "one_level", "two_level", "chooser")

    name = "SKLCond"

    def __init__(
        self,
        sizes: StructureSizes | None = None,
        mapping: MappingProvider | None = None,
    ):
        self.sizes = sizes if sizes is not None else StructureSizes()
        self.mapping = mapping if mapping is not None else BaselineMappingProvider(self.sizes)
        entries = self.sizes.pht_entries
        self.one_level = PatternHistoryTable(entries, self.sizes.pht_counter_bits)
        self.two_level = PatternHistoryTable(entries, self.sizes.pht_counter_bits)
        self.chooser = PatternHistoryTable(entries, 2, initial=1)  # weakly prefer 1-level

    def predict(self, ip: int, history: HistoryState) -> DirectionPrediction:
        mapping = self.mapping
        one_index = mapping.pht_index_1level(ip)
        two_index = mapping.pht_index_2level(ip, history.ghr.value)
        use_two_level = self.chooser.predict(one_index)
        if use_two_level:
            taken = self.two_level.predict(two_index)
        else:
            taken = self.one_level.predict(one_index)
        return DirectionPrediction(
            taken=taken,
            used_two_level=use_two_level,
            one_level_index=one_index,
            two_level_index=two_index,
        )

    def update(self, prediction: DirectionPrediction, taken: bool, ip: int = 0) -> None:
        del ip
        one_level = self.one_level
        two_level = self.two_level
        one_index = prediction.one_level_index
        two_index = prediction.two_level_index
        one_correct = one_level.predict(one_index) == taken
        two_correct = two_level.predict(two_index) == taken
        if one_correct != two_correct:
            # Train the chooser toward whichever component was right.
            self.chooser.update(one_index, two_correct)
        one_level.update(one_index, taken)
        two_level.update(two_index, taken)

    def flush(self) -> None:
        self.one_level.flush()
        self.two_level.flush()
        self.chooser.flush()
