"""Pattern history table (PHT) and the baseline conditional direction predictor.

The paper's baseline models the conditional predictor found in Intel Skylake
as a gshare-like structure with two addressing modes over a 16k-entry table of
2-bit saturating counters: a simple 1-level per-address mode and a 2-level
mode that hashes in the global history register.  We implement that as a
hybrid of a bimodal (1-level) array and a gshare (2-level) array with a
per-branch choice table — the standard generalisation of such designs — which
we refer to throughout the code as ``SKLCond``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bpu.common import StructureSizes
from repro.bpu.history import HistoryState
from repro.bpu.mapping import BaselineMappingProvider, MappingProvider


@dataclass(slots=True)
class SaturatingCounter:
    """An n-bit saturating counter finite-state machine."""

    bits: int = 2
    value: int = 1  # weakly not-taken

    @property
    def maximum(self) -> int:
        return (1 << self.bits) - 1

    @property
    def taken(self) -> bool:
        return self.value > self.maximum // 2

    def update(self, taken: bool) -> None:
        if taken:
            self.value = min(self.maximum, self.value + 1)
        else:
            self.value = max(0, self.value - 1)


class PatternHistoryTable:
    """A flat array of saturating counters addressed by an externally computed index."""

    def __init__(self, entries: int, counter_bits: int = 2, initial: int | None = None):
        if entries <= 0:
            raise ValueError("entries must be positive")
        self.entries = entries
        self.counter_bits = counter_bits
        maximum = (1 << counter_bits) - 1
        start = initial if initial is not None else maximum // 2
        self._counters = [SaturatingCounter(counter_bits, start) for _ in range(entries)]

    def predict(self, index: int) -> bool:
        return self._counters[index % self.entries].taken

    def counter_value(self, index: int) -> int:
        return self._counters[index % self.entries].value

    def update(self, index: int, taken: bool) -> None:
        self._counters[index % self.entries].update(taken)

    def flush(self) -> None:
        maximum = (1 << self.counter_bits) - 1
        for counter in self._counters:
            counter.value = maximum // 2


@dataclass(slots=True)
class DirectionPrediction:
    """Direction prediction plus which component produced it."""

    taken: bool
    used_two_level: bool
    one_level_index: int
    two_level_index: int


class SKLConditionalPredictor:
    """Hybrid 1-level / 2-level (gshare) conditional direction predictor.

    This is the ``SKLCond`` baseline referenced by the paper's gem5
    evaluation.  A choice table selects, per branch address, whether the
    1-level or 2-level component supplies the prediction; both components are
    trained on every resolved branch (with the usual bias toward the selected
    component in the chooser update).
    """

    name = "SKLCond"

    def __init__(
        self,
        sizes: StructureSizes | None = None,
        mapping: MappingProvider | None = None,
    ):
        self.sizes = sizes if sizes is not None else StructureSizes()
        self.mapping = mapping if mapping is not None else BaselineMappingProvider(self.sizes)
        entries = self.sizes.pht_entries
        self.one_level = PatternHistoryTable(entries, self.sizes.pht_counter_bits)
        self.two_level = PatternHistoryTable(entries, self.sizes.pht_counter_bits)
        self.chooser = PatternHistoryTable(entries, 2, initial=1)  # weakly prefer 1-level

    def predict(self, ip: int, history: HistoryState) -> DirectionPrediction:
        one_index = self.mapping.pht_index_1level(ip)
        two_index = self.mapping.pht_index_2level(ip, history.ghr.snapshot())
        use_two_level = self.chooser.predict(one_index)
        taken = self.two_level.predict(two_index) if use_two_level else self.one_level.predict(one_index)
        return DirectionPrediction(
            taken=taken,
            used_two_level=use_two_level,
            one_level_index=one_index,
            two_level_index=two_index,
        )

    def update(self, prediction: DirectionPrediction, taken: bool, ip: int = 0) -> None:
        del ip
        one_correct = self.one_level.predict(prediction.one_level_index) == taken
        two_correct = self.two_level.predict(prediction.two_level_index) == taken
        if one_correct != two_correct:
            # Train the chooser toward whichever component was right.
            self.chooser.update(prediction.one_level_index, two_correct)
        self.one_level.update(prediction.one_level_index, taken)
        self.two_level.update(prediction.two_level_index, taken)

    def flush(self) -> None:
        self.one_level.flush()
        self.two_level.flush()
        self.chooser.flush()
