"""Baseline branch-prediction substrate: structures, predictors, protections."""

from repro.bpu.common import (
    AccessResult,
    BranchPredictorModel,
    Prediction,
    PredictorStats,
    StructureSizes,
    fold_bits,
)
from repro.bpu.mapping import (
    BASELINE_ADDRESS_BITS,
    BTBLookupKey,
    BaselineMappingProvider,
    FullAddressMappingProvider,
    IdentityTargetCodec,
    MappingProvider,
    TargetCodec,
)
from repro.bpu.history import BranchHistoryBuffer, FoldedHistory, GlobalHistoryRegister, HistoryState
from repro.bpu.btb import BranchTargetBuffer, BTBEntry, BTBLookupResult, BTBUpdateResult
from repro.bpu.pht import (
    DirectionPrediction,
    PatternHistoryTable,
    SaturatingCounter,
    SKLConditionalPredictor,
)
from repro.bpu.rsb import ReturnStackBuffer, RSBPopResult
from repro.bpu.tage import TAGE_SC_L_8KB, TAGE_SC_L_64KB, TAGEConfig, TAGEPredictor
from repro.bpu.perceptron import DEFAULT_PERCEPTRON, PerceptronConfig, PerceptronPredictor
from repro.bpu.composite import CompositeBPU, make_skl_composite
from repro.bpu.protections import (
    ConservativeBPU,
    FlushingProtectedBPU,
    make_conservative,
    make_ucode_protection_1,
    make_ucode_protection_2,
    make_unprotected_baseline,
)

__all__ = [
    "AccessResult",
    "BranchPredictorModel",
    "Prediction",
    "PredictorStats",
    "StructureSizes",
    "fold_bits",
    "BASELINE_ADDRESS_BITS",
    "BTBLookupKey",
    "BaselineMappingProvider",
    "FullAddressMappingProvider",
    "IdentityTargetCodec",
    "MappingProvider",
    "TargetCodec",
    "BranchHistoryBuffer",
    "FoldedHistory",
    "GlobalHistoryRegister",
    "HistoryState",
    "BranchTargetBuffer",
    "BTBEntry",
    "BTBLookupResult",
    "BTBUpdateResult",
    "DirectionPrediction",
    "PatternHistoryTable",
    "SaturatingCounter",
    "SKLConditionalPredictor",
    "ReturnStackBuffer",
    "RSBPopResult",
    "TAGE_SC_L_8KB",
    "TAGE_SC_L_64KB",
    "TAGEConfig",
    "TAGEPredictor",
    "DEFAULT_PERCEPTRON",
    "PerceptronConfig",
    "PerceptronPredictor",
    "CompositeBPU",
    "make_skl_composite",
    "ConservativeBPU",
    "FlushingProtectedBPU",
    "make_conservative",
    "make_ucode_protection_1",
    "make_ucode_protection_2",
    "make_unprotected_baseline",
]
