"""Shared plumbing for the experiment drivers.

Each ``figureN.py`` / ``tableN.py`` module regenerates one artifact of the
paper's evaluation by declaring a grid on :mod:`repro.engine`; the canonical
model definitions live in the engine's model registry
(:mod:`repro.engine.registry`).  This module keeps the scale/trace-cache
conveniences and the monitor-threshold derivation the drivers share.
"""

from __future__ import annotations

from repro.core.monitoring import MonitorConfig
from repro.engine.grid import ExperimentScale
from repro.engine.workloads import clear_trace_cache, trace_for
from repro.security.analysis import derive_rerandomization_thresholds
from repro.trace.branch import Trace

__all__ = [
    "ExperimentScale",
    "clear_trace_cache",
    "default_monitor_config",
    "mean",
    "workload_trace",
]


def workload_trace(name: str, scale: ExperimentScale) -> Trace:
    """Generate (and memoise) the synthetic trace for one workload.

    Thin wrapper over the engine's shared trace cache
    (:func:`repro.engine.workloads.trace_for`), kept for callers that think
    in :class:`ExperimentScale` terms.
    """
    return trace_for(name, scale.branch_count, scale.seed)


def default_monitor_config(r: float = 0.05,
                           separate_direction_register: bool = True) -> MonitorConfig:
    """Thresholds derived from the security analysis at difficulty factor ``r``."""
    return derive_rerandomization_thresholds(
        r=r, separate_direction_register=separate_direction_register
    )


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0
