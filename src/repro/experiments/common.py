"""Shared plumbing for the experiment drivers.

Each ``figureN.py`` / ``tableN.py`` module regenerates one artifact of the
paper's evaluation: it builds the protection models, generates (or reuses)
synthetic traces for the paper's workloads, runs the appropriate simulator,
and returns plain dictionaries/rows that the benchmarks print and
EXPERIMENTS.md records.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpu.common import BranchPredictorModel, StructureSizes
from repro.bpu.protections import (
    make_conservative,
    make_ucode_protection_1,
    make_ucode_protection_2,
    make_unprotected_baseline,
)
from repro.bpu.perceptron import DEFAULT_PERCEPTRON
from repro.bpu.tage import TAGE_SC_L_8KB, TAGE_SC_L_64KB
from repro.core.monitoring import MonitorConfig
from repro.core.stbpu import (
    make_stbpu_perceptron,
    make_stbpu_skl,
    make_stbpu_tage,
    make_unprotected_perceptron,
    make_unprotected_tage,
)
from repro.bpu.composite import make_skl_composite
from repro.security.analysis import derive_rerandomization_thresholds
from repro.trace.branch import Trace
from repro.trace.synthetic import generate_trace


@dataclass(slots=True)
class ExperimentScale:
    """Knobs that trade fidelity for runtime; defaults suit tests and benches."""

    branch_count: int = 20_000
    warmup_branches: int = 2_000
    seed: int = 7
    workload_limit: int | None = None


_TRACE_CACHE: dict[tuple[str, int, int], Trace] = {}


def workload_trace(name: str, scale: ExperimentScale) -> Trace:
    """Generate (and memoise) the synthetic trace for one workload."""
    key = (name, scale.branch_count, scale.seed)
    if key not in _TRACE_CACHE:
        _TRACE_CACHE[key] = generate_trace(
            name, seed=scale.seed, branch_count=scale.branch_count
        )
    return _TRACE_CACHE[key]


def clear_trace_cache() -> None:
    """Drop memoised traces (used by tests that tune generation parameters)."""
    _TRACE_CACHE.clear()


def default_monitor_config(r: float = 0.05,
                           separate_direction_register: bool = True) -> MonitorConfig:
    """Thresholds derived from the security analysis at difficulty factor ``r``."""
    return derive_rerandomization_thresholds(
        r=r, separate_direction_register=separate_direction_register
    )


def figure3_models(seed: int = 0) -> list[BranchPredictorModel]:
    """The five protection models compared in Figure 3."""
    sizes = StructureSizes()
    monitor = default_monitor_config(separate_direction_register=False)
    return [
        make_unprotected_baseline(sizes),
        make_ucode_protection_1(sizes),
        make_ucode_protection_2(sizes),
        make_conservative(sizes),
        make_stbpu_skl(sizes, monitor_config=monitor, seed=seed),
    ]


@dataclass(frozen=True, slots=True)
class PredictorPair:
    """An unprotected predictor and its ST-protected counterpart (Figures 4-6)."""

    label: str
    baseline_factory: object
    protected_factory: object


def figure4_predictor_pairs(r: float = 0.05, seed: int = 0) -> list[PredictorPair]:
    """The four (baseline, ST) predictor pairs evaluated in Figures 4 and 5."""
    tage_monitor = default_monitor_config(r=r, separate_direction_register=True)
    skl_monitor = default_monitor_config(r=r, separate_direction_register=False)
    return [
        PredictorPair(
            label="PerceptronBP",
            baseline_factory=lambda: make_unprotected_perceptron(DEFAULT_PERCEPTRON),
            protected_factory=lambda: make_stbpu_perceptron(
                DEFAULT_PERCEPTRON, monitor_config=tage_monitor, seed=seed),
        ),
        PredictorPair(
            label="SKLCond",
            baseline_factory=lambda: make_skl_composite(name="SKLCond"),
            protected_factory=lambda: make_stbpu_skl(
                monitor_config=skl_monitor, seed=seed),
        ),
        PredictorPair(
            label="TAGE_SC_L_64KB",
            baseline_factory=lambda: make_unprotected_tage(TAGE_SC_L_64KB),
            protected_factory=lambda: make_stbpu_tage(
                TAGE_SC_L_64KB, monitor_config=tage_monitor, seed=seed),
        ),
        PredictorPair(
            label="TAGE_SC_L_8KB",
            baseline_factory=lambda: make_unprotected_tage(TAGE_SC_L_8KB),
            protected_factory=lambda: make_stbpu_tage(
                TAGE_SC_L_8KB, monitor_config=tage_monitor, seed=seed),
        ),
    ]


def mean(values: list[float]) -> float:
    return sum(values) / len(values) if values else 0.0
