"""Figure 2 — construction of the R1 remapping function.

The paper shows the selected gate-level design of R1: alternating substitution
(S-box), permutation (P-box) and compression (C-S box) layers with a 36-
transistor critical path, computable in a single cycle.  This experiment
rebuilds that reference design, verifies it against the hardware constraints
and the uniformity/avalanche criteria, and also exercises the automated
generator to show that constraint-satisfying candidates are found for every
remapping function in Table II.

The per-function generator searches are declared as engine ``"hashgen"`` jobs
(one per Table II function, deterministic per-job seed) so they can run on
worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    ExperimentSpec,
    Job,
    Option,
    ResultFrame,
    register_experiment,
)
from repro.hashgen.constraints import HardwareConstraints, check_design, summarize_cost
from repro.hashgen.generator import build_reference_r1
from repro.hashgen.metrics import measure_avalanche, measure_uniformity
from repro.hashgen.optimization import REMAP_CONSTRAINTS


@dataclass(slots=True)
class Figure2Result:
    """Reference R1 metrics plus the per-function generated candidates."""

    reference_layers: list[str]
    reference_critical_path: int
    reference_single_cycle: bool
    reference_uniformity_cv: float
    reference_avalanche_mean: float
    reference_sac: bool
    generated: dict[str, dict[str, float]] = field(default_factory=dict)


def figure2_jobs(
    attempts_per_function: int = 12,
    uniformity_samples: int = 3_000,
    avalanche_samples: int = 60,
    seed: int = 0,
) -> list[Job]:
    """One ``hashgen`` job per Table II remapping function."""
    return [
        Job(
            index=index,
            kind="hashgen",
            workload=label,
            seed=seed + index * 97,
            params=(
                ("attempts", attempts_per_function),
                ("avalanche_samples", max(20, avalanche_samples // 3)),
                ("uniformity_samples", uniformity_samples),
            ),
        )
        for index, label in enumerate(REMAP_CONSTRAINTS)
    ]


def collect_figure2(
    frame: ResultFrame,
    uniformity_samples: int = 3_000,
    avalanche_samples: int = 60,
) -> Figure2Result:
    """Rebuild the reference R1 and fold in the executed generator searches."""
    constraints = HardwareConstraints(input_bits=80, output_bits=22)
    reference = build_reference_r1(constraints)
    cost = summarize_cost(reference.layers)
    check = check_design(reference.layers, constraints)
    uniformity = measure_uniformity(reference.apply, 80, 22, samples=uniformity_samples)
    avalanche = measure_avalanche(reference.apply, 80, 22, samples=avalanche_samples)

    result = Figure2Result(
        reference_layers=reference.describe(),
        reference_critical_path=cost.critical_path_transistors,
        reference_single_cycle=check.satisfied and cost.single_cycle_feasible(constraints),
        reference_uniformity_cv=uniformity.normalized_cv,
        reference_avalanche_mean=avalanche.mean_flip_fraction,
        reference_sac=avalanche.satisfies_sac,
    )
    for record in frame:
        # Functions for which no candidate satisfied the constraints are
        # omitted, mirroring the paper's "best found" table.
        if "score" in record.metrics:
            result.generated[record.workload] = dict(record.metrics)
    return result


def run_figure2(
    attempts_per_function: int = 12,
    uniformity_samples: int = 3_000,
    avalanche_samples: int = 60,
    seed: int = 0,
    workers: int = 1,
) -> Figure2Result:
    """Rebuild the reference R1 and run the generator for every remapping function."""
    jobs = figure2_jobs(attempts_per_function, uniformity_samples, avalanche_samples, seed)
    frame = EngineRunner(workers=workers).run_jobs(jobs)
    return collect_figure2(frame, uniformity_samples, avalanche_samples)


def format_figure2(result: Figure2Result) -> str:
    lines = ["reference R1 design:"]
    lines.extend(f"  {line}" for line in result.reference_layers)
    lines.append(
        f"  critical path {result.reference_critical_path} transistors, "
        f"single cycle: {result.reference_single_cycle}, "
        f"uniformity CV {result.reference_uniformity_cv:.3f}, "
        f"avalanche {result.reference_avalanche_mean:.3f} (SAC {result.reference_sac})"
    )
    lines.append("generated candidates:")
    for label, metrics in result.generated.items():
        lines.append(
            f"  {label}: best of {int(metrics['candidates'])} candidates — "
            f"path {int(metrics['critical_path_transistors'])} transistors, "
            f"uniformity CV {metrics['uniformity_cv']:.3f}, "
            f"avalanche {metrics['avalanche_mean']:.3f}, score {metrics['score']:.3f}"
        )
    return "\n".join(lines)


register_experiment(ExperimentSpec(
    name="figure2",
    description="R1 remapping-function construction",
    kind="hashgen",
    default_seed=0,
    options=(
        Option("seed", type=int, default=None, help="generator seed"),
        Option("attempts", type=int, default=12,
               help="generator attempts per remapping function"),
    ),
    build_jobs=lambda params: figure2_jobs(
        attempts_per_function=params["attempts"], seed=params["seed"]),
    post_process=lambda frame, params: collect_figure2(frame),
    formatter=format_figure2,
))


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure2(run_figure2()))


if __name__ == "__main__":  # pragma: no cover
    main()
