"""Ablation study of the STBPU design choices.

The full design combines three mechanisms: keyed remapping (ψ), stored-target
encryption (ϕ), and event-triggered ST re-randomization.  This experiment
disables them one at a time and measures, for each variant,

* the OAE accuracy on a workload trace (the performance side), and
* the success of the two attack classes each mechanism is responsible for:
  Spectre v2 target injection (defeated by encryption) and the same-address-
  space transient trojan (defeated by full-address keyed remapping).

It substantiates the paper's argument that the mechanisms are complementary:
remapping alone leaves cross-token target injection only probabilistically
hard, encryption alone leaves same-address-space collisions deterministic,
and either without re-randomization can be brute-forced given enough
observable events.

The variants are registry-addressable (``"stbpu_variant"`` with mechanism
switches, built by :mod:`repro.engine.variants`); accuracy cells and attack
cells are one engine job each, so the whole study parallelises.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    ExperimentSpec,
    Job,
    ModelSpec,
    Option,
    ResultFrame,
    SimulationGrid,
    build_scale,
    register_experiment,
)
from repro.sim.metrics import normalized

#: (display label, mechanism switches or None for the unprotected baseline).
ABLATION_VARIANTS: tuple[tuple[str, tuple[bool, bool, bool] | None], ...] = (
    ("unprotected", None),
    ("full STBPU", (True, True, True)),
    ("remapping only", (True, False, True)),
    ("encryption only", (False, True, True)),
    ("no re-randomization", (True, True, False)),
)


def _variant_spec(label: str, flags: tuple[bool, bool, bool] | None) -> ModelSpec:
    if flags is None:
        return ModelSpec.of("baseline", label=label)
    remapping, encryption, rerandomization = flags
    return ModelSpec.of(
        "stbpu_variant",
        label=label,
        remapping=remapping,
        encryption=encryption,
        rerandomization=rerandomization,
    )


@dataclass(slots=True)
class AblationRow:
    """Measurements for one design variant."""

    variant: str
    oae_accuracy: float
    normalized_oae: float
    spectre_v2_rate: float
    trojan_rate: float


@dataclass(slots=True)
class AblationResult:
    rows: list[AblationRow] = field(default_factory=list)

    def row(self, variant: str) -> AblationRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)


def ablation_jobs(scale: ExperimentScale, workload: str) -> list[Job]:
    """Accuracy grid plus attack jobs for every design variant."""
    specs = [_variant_spec(label, flags) for label, flags in ABLATION_VARIANTS]
    accuracy_grid = SimulationGrid(
        kind="trace", models=specs, workloads=[workload], scale=scale
    )
    jobs = accuracy_grid.jobs()
    index = len(jobs)
    for spec in specs:
        for attack, budget in (("spectre_v2", ("attempts", 150)),
                               ("trojan", ("trials", 100))):
            jobs.append(
                Job(
                    index=index,
                    kind="attack",
                    model=spec,
                    seed=scale.seed,
                    params=(("attack", attack), budget),
                )
            )
            index += 1
    return jobs


def collect_ablation(frame: ResultFrame, workload: str = "505.mcf") -> AblationResult:
    """Reduce an executed ablation frame to per-variant rows."""
    baseline_oae = frame.metric("unprotected", workload, "oae_accuracy")

    result = AblationResult()
    for label, _flags in ABLATION_VARIANTS:
        accuracy = frame.metric(label, workload, "oae_accuracy")
        result.rows.append(
            AblationRow(
                variant=label,
                oae_accuracy=accuracy,
                normalized_oae=normalized(accuracy, baseline_oae),
                spectre_v2_rate=frame.metric(label, "spectre_v2", "success_metric"),
                trojan_rate=frame.metric(label, "trojan", "success_metric"),
            )
        )
    return result


def run_ablation(scale: ExperimentScale | None = None,
                 workload: str = "505.mcf",
                 workers: int = 1) -> AblationResult:
    """Measure accuracy and attack resistance for each design variant."""
    scale = scale if scale is not None else ExperimentScale(branch_count=8_000,
                                                            warmup_branches=800)
    frame = EngineRunner(workers=workers).run_jobs(ablation_jobs(scale, workload))
    return collect_ablation(frame, workload)


def format_ablation(result: AblationResult) -> str:
    lines = [f"{'variant':24s} {'OAE':>8s} {'norm':>7s} {'spectre-v2':>11s} {'trojan':>8s}"]
    for row in result.rows:
        lines.append(
            f"{row.variant:24s} {row.oae_accuracy:8.3f} {row.normalized_oae:7.3f} "
            f"{row.spectre_v2_rate:11.3f} {row.trojan_rate:8.3f}"
        )
    return "\n".join(lines)


register_experiment(ExperimentSpec(
    name="ablation",
    description="STBPU design-choice ablation study",
    kind="trace",
    uses_scale=True,
    default_seed=7,
    options=(
        Option("workload", default="505.mcf",
               help="workload used for the accuracy series"),
    ),
    build_jobs=lambda params: ablation_jobs(build_scale(params), params["workload"]),
    post_process=lambda frame, params: collect_ablation(frame, params["workload"]),
    formatter=format_ablation,
))


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_ablation(run_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
