"""Ablation study of the STBPU design choices.

The full design combines three mechanisms: keyed remapping (ψ), stored-target
encryption (ϕ), and event-triggered ST re-randomization.  This experiment
disables them one at a time and measures, for each variant,

* the OAE accuracy on a workload trace (the performance side), and
* the success of the two attack classes each mechanism is responsible for:
  Spectre v2 target injection (defeated by encryption) and the same-address-
  space transient trojan (defeated by full-address keyed remapping).

It substantiates the paper's argument that the mechanisms are complementary:
remapping alone leaves cross-token target injection only probabilistically
hard, encryption alone leaves same-address-space collisions deterministic,
and either without re-randomization can be brute-forced given enough
observable events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpu.common import StructureSizes
from repro.bpu.composite import CompositeBPU
from repro.bpu.mapping import BaselineMappingProvider, IdentityTargetCodec
from repro.bpu.pht import SKLConditionalPredictor
from repro.bpu.protections import make_unprotected_baseline
from repro.core.encryption import XorTargetCodec
from repro.core.monitoring import MonitorConfig
from repro.core.remapping import STMappingProvider
from repro.core.secret_token import TokenGenerator
from repro.core.stbpu import STBPU, make_stbpu_skl
from repro.experiments.common import ExperimentScale, workload_trace
from repro.security.attacks import SpectreV2Injection, TransientTrojanAttack
from repro.sim.bpu_sim import TraceSimulator

#: Effectively-disabled re-randomization (counters never reach zero in our runs).
_NO_RERANDOMIZATION = MonitorConfig(
    misprediction_threshold=1 << 30,
    eviction_threshold=1 << 30,
    direction_misprediction_threshold=None,
)


def _make_variant(remapping: bool, encryption: bool, rerandomization: bool,
                  seed: int = 0) -> STBPU:
    """Build an STBPU with individual mechanisms enabled or disabled."""
    sizes = StructureSizes()
    generator = TokenGenerator(seed)
    token = generator.next_token()
    mapping = STMappingProvider(token, sizes) if remapping else BaselineMappingProvider(sizes)
    codec = XorTargetCodec(token) if encryption else IdentityTargetCodec()
    direction = SKLConditionalPredictor(sizes, mapping)
    inner = CompositeBPU(direction, sizes=sizes, mapping=mapping, codec=codec,
                         name="ablation-inner")
    monitor = (MonitorConfig(41_500, 26_500, None) if rerandomization
               else _NO_RERANDOMIZATION)

    # STBPU expects token-aware mapping/codec; wrap pass-throughs when disabled.
    class _StaticMapping(STMappingProvider):
        """Keyed-provider facade over the baseline mapping (remapping disabled)."""

        def __init__(self):
            super().__init__(token, sizes)
            self._base = BaselineMappingProvider(sizes)

        def set_token(self, new_token):  # re-randomization has nothing to re-key
            super().set_token(new_token)

        def btb_mode1(self, ip):
            return self._base.btb_mode1(ip)

        def btb_mode2(self, ip, bhb):
            return self._base.btb_mode2(ip, bhb)

        def pht_index_1level(self, ip):
            return self._base.pht_index_1level(ip)

        def pht_index_2level(self, ip, ghr):
            return self._base.pht_index_2level(ip, ghr)

        def tage_index(self, ip, folded_history, table, index_bits):
            return self._base.tage_index(ip, folded_history, table, index_bits)

        def tage_tag(self, ip, folded_history, table, tag_bits):
            return self._base.tage_tag(ip, folded_history, table, tag_bits)

        def perceptron_index(self, ip, table_size):
            return self._base.perceptron_index(ip, table_size)

    class _StaticCodec(XorTargetCodec):
        """ϕ-codec facade that stores targets verbatim (encryption disabled)."""

        def encode(self, target):
            return target & 0xFFFF_FFFF

        def decode(self, stored):
            return stored & 0xFFFF_FFFF

    if not remapping:
        mapping_for_stbpu = _StaticMapping()
        direction.mapping = mapping_for_stbpu
        inner.mapping = mapping_for_stbpu
        inner.btb.mapping = mapping_for_stbpu
    else:
        mapping_for_stbpu = mapping

    if not encryption:
        codec_for_stbpu = _StaticCodec(token)
        inner.codec = codec_for_stbpu
        inner.btb.codec = codec_for_stbpu
        inner.rsb.codec = codec_for_stbpu
    else:
        codec_for_stbpu = codec

    return STBPU(inner, mapping_for_stbpu, codec_for_stbpu,
                 token_generator=generator, monitor_config=monitor,
                 name=_variant_name(remapping, encryption, rerandomization))


def _variant_name(remapping: bool, encryption: bool, rerandomization: bool) -> str:
    parts = []
    parts.append("remap" if remapping else "no-remap")
    parts.append("enc" if encryption else "no-enc")
    parts.append("rerand" if rerandomization else "no-rerand")
    return "STBPU[" + ",".join(parts) + "]"


@dataclass(slots=True)
class AblationRow:
    """Measurements for one design variant."""

    variant: str
    oae_accuracy: float
    normalized_oae: float
    spectre_v2_rate: float
    trojan_rate: float


@dataclass(slots=True)
class AblationResult:
    rows: list[AblationRow] = field(default_factory=list)

    def row(self, variant: str) -> AblationRow:
        for row in self.rows:
            if row.variant == variant:
                return row
        raise KeyError(variant)


def run_ablation(scale: ExperimentScale | None = None,
                 workload: str = "505.mcf") -> AblationResult:
    """Measure accuracy and attack resistance for each design variant."""
    scale = scale if scale is not None else ExperimentScale(branch_count=8_000,
                                                            warmup_branches=800)
    trace = workload_trace(workload, scale)
    simulator = TraceSimulator(warmup_branches=scale.warmup_branches)
    baseline_oae = simulator.run(make_unprotected_baseline(), trace).report.oae_accuracy

    variants = [
        ("unprotected", None),
        ("full STBPU", (True, True, True)),
        ("remapping only", (True, False, True)),
        ("encryption only", (False, True, True)),
        ("no re-randomization", (True, True, False)),
    ]

    result = AblationResult()
    for label, flags in variants:
        if flags is None:
            model_for_accuracy = make_unprotected_baseline()
            attack_model_factory = make_unprotected_baseline
        else:
            model_for_accuracy = _make_variant(*flags, seed=scale.seed)
            attack_model_factory = lambda flags=flags: _make_variant(*flags, seed=scale.seed)

        accuracy = simulator.run(model_for_accuracy, trace).report.oae_accuracy
        spectre = SpectreV2Injection(attack_model_factory(), seed=scale.seed).run(attempts=150)
        trojan = TransientTrojanAttack(attack_model_factory(), seed=scale.seed).run(trials=100)
        result.rows.append(
            AblationRow(
                variant=label,
                oae_accuracy=accuracy,
                normalized_oae=accuracy / baseline_oae if baseline_oae else 0.0,
                spectre_v2_rate=spectre.success_metric,
                trojan_rate=trojan.success_metric,
            )
        )
    return result


def format_ablation(result: AblationResult) -> str:
    lines = [f"{'variant':24s} {'OAE':>8s} {'norm':>7s} {'spectre-v2':>11s} {'trojan':>8s}"]
    for row in result.rows:
        lines.append(
            f"{row.variant:24s} {row.oae_accuracy:8.3f} {row.normalized_oae:7.3f} "
            f"{row.spectre_v2_rate:11.3f} {row.trojan_rate:8.3f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_ablation(run_ablation()))


if __name__ == "__main__":  # pragma: no cover
    main()
