"""Figure 3 — overall branch prediction accuracy of the five protection models.

For every workload trace (23 SPEC CPU 2017 + 12 application scenarios) the
five models — unprotected baseline, µcode protection 1 and 2, the
conservative structural redesign, and STBPU — replay the same trace through
the trace-driven simulator; the reported series is each model's OAE accuracy
normalized by the unprotected baseline.  The paper's averages are baseline
1.00, STBPU 0.99, conservative 0.88, µcode protection 2 0.82, µcode
protection 1 0.77.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import ExperimentScale, figure3_models, mean, workload_trace
from repro.sim.bpu_sim import TraceSimulator
from repro.trace.workloads import list_workloads


@dataclass(slots=True)
class Figure3Row:
    """One workload's normalized OAE accuracy for every model."""

    workload: str
    baseline_oae: float
    normalized: dict[str, float] = field(default_factory=dict)


@dataclass(slots=True)
class Figure3Result:
    """All rows plus per-model averages (the horizontal lines in the figure)."""

    rows: list[Figure3Row]
    model_order: list[str]

    def average(self, model: str) -> float:
        return mean([row.normalized[model] for row in self.rows if model in row.normalized])

    def averages(self) -> dict[str, float]:
        return {model: self.average(model) for model in self.model_order}


def run_figure3(
    scale: ExperimentScale | None = None,
    workloads: list[str] | None = None,
) -> Figure3Result:
    """Regenerate the Figure 3 data series."""
    scale = scale if scale is not None else ExperimentScale()
    if workloads is None:
        workloads = list_workloads()
    if scale.workload_limit is not None:
        workloads = workloads[: scale.workload_limit]

    simulator = TraceSimulator(warmup_branches=scale.warmup_branches)
    rows: list[Figure3Row] = []
    model_order: list[str] = []
    for workload in workloads:
        trace = workload_trace(workload, scale)
        models = figure3_models(seed=scale.seed)
        if not model_order:
            model_order = [model.name for model in models]
        results = {model.name: simulator.run(model, trace) for model in models}
        baseline_name = model_order[0]
        baseline_oae = results[baseline_name].report.oae_accuracy
        normalized = {
            name: (result.report.oae_accuracy / baseline_oae if baseline_oae else 0.0)
            for name, result in results.items()
        }
        rows.append(Figure3Row(workload=workload, baseline_oae=baseline_oae,
                               normalized=normalized))
    return Figure3Result(rows=rows, model_order=model_order)


def format_figure3(result: Figure3Result) -> str:
    """Render the Figure 3 series as an aligned text table."""
    lines = []
    header = f"{'workload':28s}" + "".join(f"{name:>22s}" for name in result.model_order)
    lines.append(header)
    for row in result.rows:
        cells = "".join(f"{row.normalized[name]:22.3f}" for name in result.model_order)
        lines.append(f"{row.workload:28s}{cells}")
    lines.append("-" * len(header))
    averages = result.averages()
    cells = "".join(f"{averages[name]:22.3f}" for name in result.model_order)
    lines.append(f"{'average':28s}{cells}")
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_figure3(ExperimentScale(branch_count=30_000, workload_limit=None))
    print(format_figure3(result))


if __name__ == "__main__":  # pragma: no cover
    main()
