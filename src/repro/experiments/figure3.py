"""Figure 3 — overall branch prediction accuracy of the five protection models.

For every workload trace (23 SPEC CPU 2017 + 12 application scenarios) the
five models — unprotected baseline, µcode protection 1 and 2, the
conservative structural redesign, and STBPU — replay the same trace through
the trace-driven simulator; the reported series is each model's OAE accuracy
normalized by the unprotected baseline.  The paper's averages are baseline
1.00, STBPU 0.99, conservative 0.88, µcode protection 2 0.82, µcode
protection 1 0.77.

The experiment is declared as a :class:`~repro.engine.grid.SimulationGrid`
over (model registry names × workloads) and executed by the engine runner,
optionally on several worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    ExperimentSpec,
    Option,
    ResultFrame,
    SimulationGrid,
    build_scale,
    register_experiment,
    resolve_workloads,
)
from repro.experiments.common import mean

#: The five protection models compared in Figure 3, by registry name.
FIGURE3_MODELS: tuple[str, ...] = (
    "baseline",
    "ucode_protection_1",
    "ucode_protection_2",
    "conservative",
    "ST_SKLCond",
)


@dataclass(slots=True)
class Figure3Row:
    """One workload's normalized OAE accuracy for every model."""

    workload: str
    baseline_oae: float
    normalized: dict[str, float] = field(default_factory=dict)


@dataclass(slots=True)
class Figure3Result:
    """All rows plus per-model averages (the horizontal lines in the figure)."""

    rows: list[Figure3Row]
    model_order: list[str]

    def average(self, model: str) -> float:
        return mean([row.normalized[model] for row in self.rows if model in row.normalized])

    def averages(self) -> dict[str, float]:
        return {model: self.average(model) for model in self.model_order}


def figure3_grid(
    scale: ExperimentScale | None = None,
    workloads: list[str] | None = None,
) -> SimulationGrid:
    """The declarative (models × workloads) grid behind Figure 3."""
    scale = scale if scale is not None else ExperimentScale()
    return SimulationGrid(
        kind="trace",
        models=list(FIGURE3_MODELS),
        workloads=resolve_workloads(workloads),
        scale=scale,
    )


def collect_figure3(frame: ResultFrame) -> Figure3Result:
    """Reduce an executed Figure 3 frame to the paper's data series."""
    baseline_name = FIGURE3_MODELS[0]
    normalized = frame.normalized("oae_accuracy", baseline_name)
    rows = [
        Figure3Row(
            workload=workload,
            baseline_oae=frame.metric(baseline_name, workload, "oae_accuracy"),
            normalized=normalized[workload],
        )
        for workload in frame.workloads()
    ]
    return Figure3Result(rows=rows, model_order=list(FIGURE3_MODELS))


def run_figure3(
    scale: ExperimentScale | None = None,
    workloads: list[str] | None = None,
    workers: int = 1,
) -> Figure3Result:
    """Regenerate the Figure 3 data series."""
    grid = figure3_grid(scale, workloads)
    return collect_figure3(EngineRunner(workers=workers).run(grid))


def format_figure3(result: Figure3Result) -> str:
    """Render the Figure 3 series as an aligned text table."""
    lines = []
    header = f"{'workload':28s}" + "".join(f"{name:>22s}" for name in result.model_order)
    lines.append(header)
    for row in result.rows:
        cells = "".join(f"{row.normalized[name]:22.3f}" for name in result.model_order)
        lines.append(f"{row.workload:28s}{cells}")
    lines.append("-" * len(header))
    averages = result.averages()
    cells = "".join(f"{averages[name]:22.3f}" for name in result.model_order)
    lines.append(f"{'average':28s}{cells}")
    return "\n".join(lines)


register_experiment(ExperimentSpec(
    name="figure3",
    description="OAE accuracy of the five protection models",
    kind="trace",
    uses_scale=True,
    default_seed=7,
    options=(
        Option("workloads", nargs="*",
               help="workload names or groups (spec, application, all)"),
    ),
    build_jobs=lambda params: figure3_grid(
        build_scale(params), params["workloads"] or None).jobs(),
    post_process=lambda frame, params: collect_figure3(frame),
    formatter=format_figure3,
))


def main() -> None:  # pragma: no cover - CLI convenience
    result = run_figure3(ExperimentScale(branch_count=30_000, workload_limit=None))
    print(format_figure3(result))


if __name__ == "__main__":  # pragma: no cover
    main()
