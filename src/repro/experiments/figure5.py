"""Figure 5 — SMT (workload pair) evaluation of the ST designs.

Pairs of SPEC workloads share one BPU in SMT mode; for every pair and every
predictor pair the experiment reports the reduction of direction/target
prediction rate and the harmonic-mean IPC of the ST design normalized to its
unprotected counterpart.  Paper averages: direction reduction 1.3–3.8%,
target reduction 0.4–3.7%, normalized Hmean IPC 0.951–1.009, with ST_SKLCond
suffering the most because it lacks a separate direction-misprediction
threshold register.

Declared as one engine grid of ``kind="smt"`` jobs over (both members of the
selected predictor pairs × SMT workload pairs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    ExperimentSpec,
    ResultFrame,
    SimulationGrid,
    build_scale,
    register_experiment,
)
from repro.experiments.common import mean
from repro.experiments.figure4 import PREDICTORS_OPTION, selected_pairs
from repro.sim.metrics import normalized, reduction
from repro.trace.workloads import GEM5_SMT_PAIRS


@dataclass(slots=True)
class Figure5Cell:
    """One (workload pair, predictor) measurement."""

    pair: str
    predictor: str
    direction_reduction: float
    target_reduction: float
    normalized_hmean_ipc: float


@dataclass(slots=True)
class Figure5Result:
    cells: list[Figure5Cell] = field(default_factory=list)

    def predictors(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.predictor not in seen:
                seen.append(cell.predictor)
        return seen

    def average_direction_reduction(self, predictor: str) -> float:
        return mean([c.direction_reduction for c in self.cells if c.predictor == predictor])

    def average_target_reduction(self, predictor: str) -> float:
        return mean([c.target_reduction for c in self.cells if c.predictor == predictor])

    def average_normalized_hmean_ipc(self, predictor: str) -> float:
        return mean([c.normalized_hmean_ipc for c in self.cells if c.predictor == predictor])


def figure5_grid(
    scale: ExperimentScale | None = None,
    pairs: tuple[tuple[str, str], ...] | None = None,
    predictors: list[str] | None = None,
) -> SimulationGrid:
    """The declarative grid behind Figure 5 (predictor pairs × SMT pairs)."""
    scale = scale if scale is not None else ExperimentScale()
    workload_pairs = list(pairs if pairs is not None else GEM5_SMT_PAIRS)
    models = [name for pair in selected_pairs(predictors) for name in pair]
    return SimulationGrid(kind="smt", models=models, workloads=workload_pairs, scale=scale)


def collect_figure5(frame: ResultFrame,
                    predictors: list[str] | None = None) -> Figure5Result:
    """Reduce an executed Figure 5 frame to per-pair reductions and Hmean IPC."""
    result = Figure5Result()
    predictor_pairs = selected_pairs(predictors)
    for pair_label in frame.workloads():
        for baseline_name, protected_name in predictor_pairs:
            baseline_hmean = frame.metric(baseline_name, pair_label, "hmean_ipc")
            result.cells.append(
                Figure5Cell(
                    pair=pair_label,
                    predictor=baseline_name,
                    direction_reduction=reduction(
                        frame.metric(protected_name, pair_label, "direction_accuracy"),
                        frame.metric(baseline_name, pair_label, "direction_accuracy"),
                    ),
                    target_reduction=reduction(
                        frame.metric(protected_name, pair_label, "target_accuracy"),
                        frame.metric(baseline_name, pair_label, "target_accuracy"),
                    ),
                    normalized_hmean_ipc=normalized(
                        frame.metric(protected_name, pair_label, "hmean_ipc"),
                        baseline_hmean,
                    ),
                )
            )
    return result


def run_figure5(
    scale: ExperimentScale | None = None,
    pairs: tuple[tuple[str, str], ...] | None = None,
    predictors: list[str] | None = None,
    workers: int = 1,
) -> Figure5Result:
    """Regenerate the Figure 5 data series."""
    grid = figure5_grid(scale, pairs, predictors)
    frame = EngineRunner(workers=workers).run(grid)
    return collect_figure5(frame, predictors)


def format_figure5(result: Figure5Result) -> str:
    lines = []
    for predictor in result.predictors():
        lines.append(
            f"ST_{predictor}: avg direction reduction "
            f"{result.average_direction_reduction(predictor):+.4f}, "
            f"avg target reduction {result.average_target_reduction(predictor):+.4f}, "
            f"avg normalized Hmean IPC {result.average_normalized_hmean_ipc(predictor):.3f}"
        )
    return "\n".join(lines)


register_experiment(ExperimentSpec(
    name="figure5",
    description="SMT workload-pair evaluation of the ST designs",
    kind="smt",
    uses_scale=True,
    default_seed=7,
    options=(PREDICTORS_OPTION,),
    build_jobs=lambda params: figure5_grid(
        build_scale(params), predictors=params["predictors"] or None).jobs(),
    post_process=lambda frame, params: collect_figure5(
        frame, params["predictors"] or None),
    formatter=format_figure5,
))


def main() -> None:  # pragma: no cover - CLI convenience
    scale = ExperimentScale(branch_count=12_000, workload_limit=8)
    print(format_figure5(run_figure5(scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
