"""Figure 5 — SMT (workload pair) evaluation of the ST designs.

Pairs of SPEC workloads share one BPU in SMT mode; for every pair and every
predictor pair the experiment reports the reduction of direction/target
prediction rate and the harmonic-mean IPC of the ST design normalized to its
unprotected counterpart.  Paper averages: direction reduction 1.3–3.8%,
target reduction 0.4–3.7%, normalized Hmean IPC 0.951–1.009, with ST_SKLCond
suffering the most because it lacks a separate direction-misprediction
threshold register.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    ExperimentScale,
    figure4_predictor_pairs,
    mean,
    workload_trace,
)
from repro.sim.config import SimulationLengths
from repro.sim.smt import SMTSimulator
from repro.trace.workloads import GEM5_SMT_PAIRS


@dataclass(slots=True)
class Figure5Cell:
    """One (workload pair, predictor) measurement."""

    pair: str
    predictor: str
    direction_reduction: float
    target_reduction: float
    normalized_hmean_ipc: float


@dataclass(slots=True)
class Figure5Result:
    cells: list[Figure5Cell] = field(default_factory=list)

    def predictors(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.predictor not in seen:
                seen.append(cell.predictor)
        return seen

    def average_direction_reduction(self, predictor: str) -> float:
        return mean([c.direction_reduction for c in self.cells if c.predictor == predictor])

    def average_target_reduction(self, predictor: str) -> float:
        return mean([c.target_reduction for c in self.cells if c.predictor == predictor])

    def average_normalized_hmean_ipc(self, predictor: str) -> float:
        return mean([c.normalized_hmean_ipc for c in self.cells if c.predictor == predictor])


def run_figure5(
    scale: ExperimentScale | None = None,
    pairs: tuple[tuple[str, str], ...] | None = None,
    predictors: list[str] | None = None,
) -> Figure5Result:
    """Regenerate the Figure 5 data series."""
    scale = scale if scale is not None else ExperimentScale()
    workload_pairs = list(pairs if pairs is not None else GEM5_SMT_PAIRS)
    if scale.workload_limit is not None:
        workload_pairs = workload_pairs[: scale.workload_limit]

    lengths = SimulationLengths(
        warmup_branches=scale.warmup_branches, measured_branches=scale.branch_count
    )
    simulator = SMTSimulator(lengths=lengths)
    predictor_pairs = figure4_predictor_pairs(seed=scale.seed)
    if predictors is not None:
        predictor_pairs = [pair for pair in predictor_pairs if pair.label in predictors]

    result = Figure5Result()
    for workload_a, workload_b in workload_pairs:
        trace_a = workload_trace(workload_a, scale)
        trace_b = workload_trace(workload_b, scale)
        pair_label = f"{workload_a}+{workload_b}"
        for pair in predictor_pairs:
            baseline = simulator.run(pair.baseline_factory(), trace_a, trace_b)
            protected = simulator.run(pair.protected_factory(), trace_a, trace_b)
            baseline_hmean = baseline.hmean_ipc
            result.cells.append(
                Figure5Cell(
                    pair=pair_label,
                    predictor=pair.label,
                    direction_reduction=(
                        baseline.combined_direction_accuracy
                        - protected.combined_direction_accuracy
                    ),
                    target_reduction=(
                        baseline.combined_target_accuracy
                        - protected.combined_target_accuracy
                    ),
                    normalized_hmean_ipc=(
                        protected.hmean_ipc / baseline_hmean if baseline_hmean else 0.0
                    ),
                )
            )
    return result


def format_figure5(result: Figure5Result) -> str:
    lines = []
    for predictor in result.predictors():
        lines.append(
            f"ST_{predictor}: avg direction reduction "
            f"{result.average_direction_reduction(predictor):+.4f}, "
            f"avg target reduction {result.average_target_reduction(predictor):+.4f}, "
            f"avg normalized Hmean IPC {result.average_normalized_hmean_ipc(predictor):.3f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    scale = ExperimentScale(branch_count=12_000, workload_limit=8)
    print(format_figure5(run_figure5(scale)))


if __name__ == "__main__":  # pragma: no cover
    main()
