"""Figure 4 — single-workload cycle-approximate evaluation of the ST designs.

For each of 18 SPEC CPU 2017 workloads and each of the four predictor pairs
(Perceptron, SKLCond, TAGE-SC-L 64KB, TAGE-SC-L 8KB) the experiment runs the
unprotected predictor and its ST-protected counterpart through the
cycle-approximate CPU model and reports three series:

* reduction of the direction prediction rate (baseline − ST),
* reduction of the target prediction rate, and
* IPC of the ST design normalized to the unprotected design.

Paper averages: direction reduction ≤ 1.1%, target reduction ≤ 1.8%, and
normalized IPC between 0.969 and 1.066.

Declared as one engine grid of ``kind="cpu"`` jobs over (both members of the
selected pairs × workloads); the pairing/normalization arithmetic happens on
the returned result frame.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    ExperimentSpec,
    Option,
    ResultFrame,
    SimulationGrid,
    build_scale,
    register_experiment,
)
from repro.experiments.common import mean
from repro.sim.metrics import normalized, reduction
from repro.trace.workloads import GEM5_SINGLE_WORKLOADS

#: (pair label == unprotected registry name, ST registry name) per Figure 4 pair.
FIGURE4_PAIRS: tuple[tuple[str, str], ...] = (
    ("PerceptronBP", "ST_PerceptronBP"),
    ("SKLCond", "ST_SKLCond"),
    ("TAGE_SC_L_64KB", "ST_TAGE_SC_L_64KB"),
    ("TAGE_SC_L_8KB", "ST_TAGE_SC_L_8KB"),
)


@dataclass(slots=True)
class Figure4Cell:
    """One (workload, predictor) measurement."""

    workload: str
    predictor: str
    direction_reduction: float
    target_reduction: float
    normalized_ipc: float


@dataclass(slots=True)
class Figure4Result:
    cells: list[Figure4Cell] = field(default_factory=list)

    def predictors(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.predictor not in seen:
                seen.append(cell.predictor)
        return seen

    def average_direction_reduction(self, predictor: str) -> float:
        return mean([c.direction_reduction for c in self.cells if c.predictor == predictor])

    def average_target_reduction(self, predictor: str) -> float:
        return mean([c.target_reduction for c in self.cells if c.predictor == predictor])

    def average_normalized_ipc(self, predictor: str) -> float:
        return mean([c.normalized_ipc for c in self.cells if c.predictor == predictor])


def selected_pairs(predictors: list[str] | None) -> list[tuple[str, str]]:
    """Filter the Figure 4/5 predictor pairs by label, validating the labels.

    Shared with :mod:`repro.experiments.figure5`, which evaluates the same
    pairs in SMT mode.
    """
    pairs = list(FIGURE4_PAIRS)
    if predictors is not None:
        known = {pair[0] for pair in pairs}
        unknown = sorted(set(predictors) - known)
        if unknown:
            raise ValueError(
                f"unknown predictor pair(s) {', '.join(unknown)}; "
                f"valid labels: {', '.join(sorted(known))}"
            )
        pairs = [pair for pair in pairs if pair[0] in predictors]
    return pairs


def figure4_grid(
    scale: ExperimentScale | None = None,
    workloads: tuple[str, ...] | None = None,
    predictors: list[str] | None = None,
) -> SimulationGrid:
    """The declarative grid behind Figure 4 (both members of every pair)."""
    scale = scale if scale is not None else ExperimentScale()
    workload_names = list(workloads if workloads is not None else GEM5_SINGLE_WORKLOADS)
    models = [name for pair in selected_pairs(predictors) for name in pair]
    return SimulationGrid(kind="cpu", models=models, workloads=workload_names, scale=scale)


def collect_figure4(frame: ResultFrame,
                    predictors: list[str] | None = None) -> Figure4Result:
    """Reduce an executed Figure 4 frame to per-pair reductions and IPC."""
    result = Figure4Result()
    pairs = selected_pairs(predictors)
    for workload in frame.workloads():
        for baseline_name, protected_name in pairs:
            baseline_ipc = frame.metric(baseline_name, workload, "ipc")
            result.cells.append(
                Figure4Cell(
                    workload=workload,
                    predictor=baseline_name,
                    direction_reduction=reduction(
                        frame.metric(protected_name, workload, "direction_accuracy"),
                        frame.metric(baseline_name, workload, "direction_accuracy"),
                    ),
                    target_reduction=reduction(
                        frame.metric(protected_name, workload, "target_accuracy"),
                        frame.metric(baseline_name, workload, "target_accuracy"),
                    ),
                    normalized_ipc=normalized(
                        frame.metric(protected_name, workload, "ipc"), baseline_ipc
                    ),
                )
            )
    return result


def run_figure4(
    scale: ExperimentScale | None = None,
    workloads: tuple[str, ...] | None = None,
    predictors: list[str] | None = None,
    workers: int = 1,
) -> Figure4Result:
    """Regenerate the Figure 4 data series."""
    grid = figure4_grid(scale, workloads, predictors)
    frame = EngineRunner(workers=workers).run(grid)
    return collect_figure4(frame, predictors)


def format_figure4(result: Figure4Result) -> str:
    lines = []
    for predictor in result.predictors():
        lines.append(
            f"ST_{predictor}: avg direction reduction "
            f"{result.average_direction_reduction(predictor):+.4f}, "
            f"avg target reduction {result.average_target_reduction(predictor):+.4f}, "
            f"avg normalized IPC {result.average_normalized_ipc(predictor):.3f}"
        )
    return "\n".join(lines)


#: Shared ``--predictors`` option of the Figure 4/5 pair experiments.
PREDICTORS_OPTION = Option(
    "predictors", nargs="*",
    help="pair labels to keep (e.g. SKLCond TAGE_SC_L_8KB)")


register_experiment(ExperimentSpec(
    name="figure4",
    description="single-workload IPC evaluation of the ST designs",
    kind="cpu",
    uses_scale=True,
    default_seed=7,
    options=(PREDICTORS_OPTION,),
    build_jobs=lambda params: figure4_grid(
        build_scale(params), predictors=params["predictors"] or None).jobs(),
    post_process=lambda frame, params: collect_figure4(
        frame, params["predictors"] or None),
    formatter=format_figure4,
))


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure4(run_figure4(ExperimentScale(branch_count=15_000))))


if __name__ == "__main__":  # pragma: no cover
    main()
