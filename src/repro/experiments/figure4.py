"""Figure 4 — single-workload cycle-approximate evaluation of the ST designs.

For each of 18 SPEC CPU 2017 workloads and each of the four predictor pairs
(Perceptron, SKLCond, TAGE-SC-L 64KB, TAGE-SC-L 8KB) the experiment runs the
unprotected predictor and its ST-protected counterpart through the
cycle-approximate CPU model and reports three series:

* reduction of the direction prediction rate (baseline − ST),
* reduction of the target prediction rate, and
* IPC of the ST design normalized to the unprotected design.

Paper averages: direction reduction ≤ 1.1%, target reduction ≤ 1.8%, and
normalized IPC between 0.969 and 1.066.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.common import (
    ExperimentScale,
    figure4_predictor_pairs,
    mean,
    workload_trace,
)
from repro.sim.config import SimulationLengths
from repro.sim.cpu import CycleApproximateCPU
from repro.trace.workloads import GEM5_SINGLE_WORKLOADS


@dataclass(slots=True)
class Figure4Cell:
    """One (workload, predictor) measurement."""

    workload: str
    predictor: str
    direction_reduction: float
    target_reduction: float
    normalized_ipc: float


@dataclass(slots=True)
class Figure4Result:
    cells: list[Figure4Cell] = field(default_factory=list)

    def predictors(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.predictor not in seen:
                seen.append(cell.predictor)
        return seen

    def average_direction_reduction(self, predictor: str) -> float:
        return mean([c.direction_reduction for c in self.cells if c.predictor == predictor])

    def average_target_reduction(self, predictor: str) -> float:
        return mean([c.target_reduction for c in self.cells if c.predictor == predictor])

    def average_normalized_ipc(self, predictor: str) -> float:
        return mean([c.normalized_ipc for c in self.cells if c.predictor == predictor])


def run_figure4(
    scale: ExperimentScale | None = None,
    workloads: tuple[str, ...] | None = None,
    predictors: list[str] | None = None,
) -> Figure4Result:
    """Regenerate the Figure 4 data series."""
    scale = scale if scale is not None else ExperimentScale()
    workload_names = list(workloads if workloads is not None else GEM5_SINGLE_WORKLOADS)
    if scale.workload_limit is not None:
        workload_names = workload_names[: scale.workload_limit]

    lengths = SimulationLengths(
        warmup_branches=scale.warmup_branches, measured_branches=scale.branch_count
    )
    cpu = CycleApproximateCPU(lengths=lengths)
    pairs = figure4_predictor_pairs(seed=scale.seed)
    if predictors is not None:
        pairs = [pair for pair in pairs if pair.label in predictors]

    result = Figure4Result()
    for workload in workload_names:
        trace = workload_trace(workload, scale)
        for pair in pairs:
            baseline = cpu.run(pair.baseline_factory(), trace)
            protected = cpu.run(pair.protected_factory(), trace)
            baseline_ipc = baseline.performance.ipc
            result.cells.append(
                Figure4Cell(
                    workload=workload,
                    predictor=pair.label,
                    direction_reduction=(
                        baseline.performance.direction_accuracy
                        - protected.performance.direction_accuracy
                    ),
                    target_reduction=(
                        baseline.performance.target_accuracy
                        - protected.performance.target_accuracy
                    ),
                    normalized_ipc=(
                        protected.performance.ipc / baseline_ipc if baseline_ipc else 0.0
                    ),
                )
            )
    return result


def format_figure4(result: Figure4Result) -> str:
    lines = []
    for predictor in result.predictors():
        lines.append(
            f"ST_{predictor}: avg direction reduction "
            f"{result.average_direction_reduction(predictor):+.4f}, "
            f"avg target reduction {result.average_target_reduction(predictor):+.4f}, "
            f"avg normalized IPC {result.average_normalized_ipc(predictor):.3f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure4(run_figure4(ExperimentScale(branch_count=15_000))))


if __name__ == "__main__":  # pragma: no cover
    main()
