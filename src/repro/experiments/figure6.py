"""Figure 6 — sensitivity of performance to aggressive ST re-randomization.

The re-randomization thresholds are ``Γ = r·C``; the paper sweeps the attack
difficulty factor ``r`` downward (equivalent to assuming attacks 10×, 100×,
... faster than known ones) for the TAGE-SC-L 64KB STBPU in SMT mode and
shows that accuracy stays above ~95% of the unprotected design until the
thresholds shrink to a few hundred events, at which point constant
re-randomization effectively disables BPU training.

Declared as one engine grid of ``kind="smt"`` jobs: the unprotected reference
plus one parameterised ST model per swept ``r`` value, over the SMT workload
pairs.  Re-randomization counts flow through the uniform
``protection_stats()`` protocol into the job metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    ExperimentSpec,
    ModelSpec,
    Option,
    ResultFrame,
    SimulationGrid,
    build_scale,
    register_experiment,
)
from repro.experiments.common import default_monitor_config, mean
from repro.trace.workloads import GEM5_SMT_PAIRS

#: The r values swept in the paper's Figure 6 (rightmost is the default 0.05).
DEFAULT_R_SWEEP: tuple[float, ...] = (0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001, 0.00005)

#: Registry names of the swept predictor and its unprotected reference.
_BASELINE_MODEL = "TAGE_SC_L_64KB"
_PROTECTED_MODEL = "ST_TAGE_SC_L_64KB"

#: SMT pairs evaluated when no explicit scale/limit is given (the full 31-pair
#: sweep is minutes-long; drivers and the CLI share this default).
FIGURE6_DEFAULT_PAIR_LIMIT = 4


@dataclass(slots=True)
class Figure6Point:
    """Averaged metrics at one value of the difficulty factor r."""

    r: float
    misprediction_threshold: int
    eviction_threshold: int
    normalized_direction_accuracy: float
    normalized_target_accuracy: float
    normalized_hmean_ipc: float
    rerandomizations_per_kilo_branch: float


@dataclass(slots=True)
class Figure6Result:
    points: list[Figure6Point] = field(default_factory=list)


def _sweep_label(r: float) -> str:
    return f"{_PROTECTED_MODEL}[r={r:g}]"


def figure6_grid(
    scale: ExperimentScale | None = None,
    r_values: tuple[float, ...] = DEFAULT_R_SWEEP,
    pairs: tuple[tuple[str, str], ...] | None = None,
) -> SimulationGrid:
    """The declarative grid behind Figure 6: baseline + one ST model per r."""
    scale = scale if scale is not None else ExperimentScale(
        branch_count=10_000, workload_limit=FIGURE6_DEFAULT_PAIR_LIMIT)
    workload_pairs = list(pairs if pairs is not None else GEM5_SMT_PAIRS)
    models: list[ModelSpec | str] = [_BASELINE_MODEL]
    models.extend(
        ModelSpec.of(_PROTECTED_MODEL, label=_sweep_label(r), r=r) for r in r_values
    )
    return SimulationGrid(kind="smt", models=models, workloads=workload_pairs, scale=scale)


def collect_figure6(frame: ResultFrame,
                    r_values: tuple[float, ...] = DEFAULT_R_SWEEP) -> Figure6Result:
    """Reduce an executed Figure 6 frame to the averaged sweep points."""
    result = Figure6Result()
    for r in r_values:
        monitor = default_monitor_config(r=r, separate_direction_register=True)
        label = _sweep_label(r)
        direction_ratios: list[float] = []
        target_ratios: list[float] = []
        ipc_ratios: list[float] = []
        rerand_rates: list[float] = []
        for pair_label in frame.workloads():
            baseline_direction = frame.metric(_BASELINE_MODEL, pair_label,
                                              "direction_accuracy")
            baseline_target = frame.metric(_BASELINE_MODEL, pair_label, "target_accuracy")
            baseline_hmean = frame.metric(_BASELINE_MODEL, pair_label, "hmean_ipc")
            if baseline_direction:
                direction_ratios.append(
                    frame.metric(label, pair_label, "direction_accuracy") / baseline_direction
                )
            if baseline_target:
                target_ratios.append(
                    frame.metric(label, pair_label, "target_accuracy") / baseline_target
                )
            if baseline_hmean:
                ipc_ratios.append(
                    frame.metric(label, pair_label, "hmean_ipc") / baseline_hmean
                )
            total_branches = frame.metric(label, pair_label, "branches")
            if total_branches:
                rerand_rates.append(
                    frame.metric(label, pair_label, "rerandomizations")
                    / (total_branches / 1000.0)
                )
        result.points.append(
            Figure6Point(
                r=r,
                misprediction_threshold=monitor.misprediction_threshold,
                eviction_threshold=monitor.eviction_threshold,
                normalized_direction_accuracy=mean(direction_ratios),
                normalized_target_accuracy=mean(target_ratios),
                normalized_hmean_ipc=mean(ipc_ratios),
                rerandomizations_per_kilo_branch=mean(rerand_rates),
            )
        )
    return result


def run_figure6(
    scale: ExperimentScale | None = None,
    r_values: tuple[float, ...] = DEFAULT_R_SWEEP,
    pairs: tuple[tuple[str, str], ...] | None = None,
    workers: int = 1,
) -> Figure6Result:
    """Regenerate the Figure 6 sweep (averaged over SMT workload pairs)."""
    grid = figure6_grid(scale, r_values, pairs)
    frame = EngineRunner(workers=workers).run(grid)
    return collect_figure6(frame, r_values)


def format_figure6(result: Figure6Result) -> str:
    lines = [
        f"{'r':>10s} {'misp thr':>10s} {'evic thr':>10s} {'dir acc':>9s} "
        f"{'tgt acc':>9s} {'hmean ipc':>10s} {'rerand/kbr':>11s}"
    ]
    for point in result.points:
        lines.append(
            f"{point.r:>10.5f} {point.misprediction_threshold:>10d} "
            f"{point.eviction_threshold:>10d} {point.normalized_direction_accuracy:>9.3f} "
            f"{point.normalized_target_accuracy:>9.3f} {point.normalized_hmean_ipc:>10.3f} "
            f"{point.rerandomizations_per_kilo_branch:>11.3f}"
        )
    return "\n".join(lines)


def _figure6_r_values(params: dict) -> tuple[float, ...]:
    return tuple(params["r_values"]) if params["r_values"] else DEFAULT_R_SWEEP


def _figure6_scale(params: dict) -> ExperimentScale:
    scale = build_scale(params)
    if params["workload_limit"] is None:
        scale.workload_limit = FIGURE6_DEFAULT_PAIR_LIMIT
    return scale


def _figure6_note(params: dict) -> str | None:
    if params["workload_limit"] is not None:
        return None
    return (
        f"note: averaging over the first {FIGURE6_DEFAULT_PAIR_LIMIT} of "
        f"{len(GEM5_SMT_PAIRS)} SMT pairs; pass --workload-limit "
        f"{len(GEM5_SMT_PAIRS)} for the full sweep"
    )


register_experiment(ExperimentSpec(
    name="figure6",
    description="re-randomization aggressiveness sweep",
    kind="smt",
    uses_scale=True,
    default_seed=7,
    options=(
        Option("r-values", nargs="*", type=float,
               help="difficulty factors to sweep (default: paper sweep)"),
    ),
    build_jobs=lambda params: figure6_grid(
        _figure6_scale(params), _figure6_r_values(params)).jobs(),
    post_process=lambda frame, params: collect_figure6(
        frame, _figure6_r_values(params)),
    note=_figure6_note,
    formatter=format_figure6,
))


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure6(run_figure6()))


if __name__ == "__main__":  # pragma: no cover
    main()
