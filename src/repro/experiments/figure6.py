"""Figure 6 — sensitivity of performance to aggressive ST re-randomization.

The re-randomization thresholds are ``Γ = r·C``; the paper sweeps the attack
difficulty factor ``r`` downward (equivalent to assuming attacks 10×, 100×,
... faster than known ones) for the TAGE-SC-L 64KB STBPU in SMT mode and
shows that accuracy stays above ~95% of the unprotected design until the
thresholds shrink to a few hundred events, at which point constant
re-randomization effectively disables BPU training.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bpu.tage import TAGE_SC_L_64KB
from repro.core.stbpu import make_stbpu_tage, make_unprotected_tage
from repro.experiments.common import ExperimentScale, default_monitor_config, mean, workload_trace
from repro.sim.config import SimulationLengths
from repro.sim.smt import SMTSimulator
from repro.trace.workloads import GEM5_SMT_PAIRS

#: The r values swept in the paper's Figure 6 (rightmost is the default 0.05).
DEFAULT_R_SWEEP: tuple[float, ...] = (0.05, 0.01, 0.005, 0.001, 0.0005, 0.0001, 0.00005)


@dataclass(slots=True)
class Figure6Point:
    """Averaged metrics at one value of the difficulty factor r."""

    r: float
    misprediction_threshold: int
    eviction_threshold: int
    normalized_direction_accuracy: float
    normalized_target_accuracy: float
    normalized_hmean_ipc: float
    rerandomizations_per_kilo_branch: float


@dataclass(slots=True)
class Figure6Result:
    points: list[Figure6Point] = field(default_factory=list)


def run_figure6(
    scale: ExperimentScale | None = None,
    r_values: tuple[float, ...] = DEFAULT_R_SWEEP,
    pairs: tuple[tuple[str, str], ...] | None = None,
) -> Figure6Result:
    """Regenerate the Figure 6 sweep (averaged over SMT workload pairs)."""
    scale = scale if scale is not None else ExperimentScale(branch_count=10_000, workload_limit=4)
    workload_pairs = list(pairs if pairs is not None else GEM5_SMT_PAIRS)
    if scale.workload_limit is not None:
        workload_pairs = workload_pairs[: scale.workload_limit]

    lengths = SimulationLengths(
        warmup_branches=scale.warmup_branches, measured_branches=scale.branch_count
    )
    simulator = SMTSimulator(lengths=lengths)

    # Unprotected reference, measured once per pair.
    baselines = {}
    for workload_a, workload_b in workload_pairs:
        trace_a = workload_trace(workload_a, scale)
        trace_b = workload_trace(workload_b, scale)
        baselines[(workload_a, workload_b)] = simulator.run(
            make_unprotected_tage(TAGE_SC_L_64KB), trace_a, trace_b
        )

    result = Figure6Result()
    for r in r_values:
        monitor = default_monitor_config(r=r, separate_direction_register=True)
        direction_ratios: list[float] = []
        target_ratios: list[float] = []
        ipc_ratios: list[float] = []
        rerand_rates: list[float] = []
        for (workload_a, workload_b), baseline in baselines.items():
            trace_a = workload_trace(workload_a, scale)
            trace_b = workload_trace(workload_b, scale)
            model = make_stbpu_tage(TAGE_SC_L_64KB, monitor_config=monitor, seed=scale.seed)
            protected = simulator.run(model, trace_a, trace_b)
            if baseline.combined_direction_accuracy:
                direction_ratios.append(
                    protected.combined_direction_accuracy / baseline.combined_direction_accuracy
                )
            if baseline.combined_target_accuracy:
                target_ratios.append(
                    protected.combined_target_accuracy / baseline.combined_target_accuracy
                )
            if baseline.hmean_ipc:
                ipc_ratios.append(protected.hmean_ipc / baseline.hmean_ipc)
            total_branches = sum(stats.branches for stats in protected.thread_stats)
            if total_branches:
                rerand_rates.append(
                    model.stats.rerandomizations / (total_branches / 1000.0)
                )
        result.points.append(
            Figure6Point(
                r=r,
                misprediction_threshold=monitor.misprediction_threshold,
                eviction_threshold=monitor.eviction_threshold,
                normalized_direction_accuracy=mean(direction_ratios),
                normalized_target_accuracy=mean(target_ratios),
                normalized_hmean_ipc=mean(ipc_ratios),
                rerandomizations_per_kilo_branch=mean(rerand_rates),
            )
        )
    return result


def format_figure6(result: Figure6Result) -> str:
    lines = [
        f"{'r':>10s} {'misp thr':>10s} {'evic thr':>10s} {'dir acc':>9s} "
        f"{'tgt acc':>9s} {'hmean ipc':>10s} {'rerand/kbr':>11s}"
    ]
    for point in result.points:
        lines.append(
            f"{point.r:>10.5f} {point.misprediction_threshold:>10d} "
            f"{point.eviction_threshold:>10d} {point.normalized_direction_accuracy:>9.3f} "
            f"{point.normalized_target_accuracy:>9.3f} {point.normalized_hmean_ipc:>10.3f} "
            f"{point.rerandomizations_per_kilo_branch:>11.3f}"
        )
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_figure6(run_figure6()))


if __name__ == "__main__":  # pragma: no cover
    main()
