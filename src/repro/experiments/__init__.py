"""Experiment drivers regenerating every table and figure of the paper."""

from repro.experiments.common import (
    ExperimentScale,
    clear_trace_cache,
    default_monitor_config,
    workload_trace,
)
from repro.experiments.ablation import (
    AblationResult,
    AblationRow,
    format_ablation,
    run_ablation,
)
from repro.experiments.attacks import (
    AttackMatrixResult,
    format_attack_matrix,
    run_attack_matrix,
)
from repro.experiments.figure2 import Figure2Result, format_figure2, run_figure2
from repro.experiments.figure3 import Figure3Result, Figure3Row, format_figure3, run_figure3
from repro.experiments.figure4 import Figure4Cell, Figure4Result, format_figure4, run_figure4
from repro.experiments.figure5 import Figure5Cell, Figure5Result, format_figure5, run_figure5
from repro.experiments.figure6 import (
    DEFAULT_R_SWEEP,
    Figure6Point,
    Figure6Result,
    format_figure6,
    run_figure6,
)
from repro.experiments.tables import (
    ThresholdReport,
    format_tables,
    format_thresholds,
    run_table1,
    run_table2,
    run_table4,
    run_tables,
    run_thresholds,
    thresholds_payload,
)

__all__ = [
    "AblationResult",
    "AblationRow",
    "format_ablation",
    "run_ablation",
    "AttackMatrixResult",
    "format_attack_matrix",
    "run_attack_matrix",
    "ExperimentScale",
    "clear_trace_cache",
    "default_monitor_config",
    "workload_trace",
    "Figure2Result",
    "format_figure2",
    "run_figure2",
    "Figure3Result",
    "Figure3Row",
    "format_figure3",
    "run_figure3",
    "Figure4Cell",
    "Figure4Result",
    "format_figure4",
    "run_figure4",
    "Figure5Cell",
    "Figure5Result",
    "format_figure5",
    "run_figure5",
    "DEFAULT_R_SWEEP",
    "Figure6Point",
    "Figure6Result",
    "format_figure6",
    "run_figure6",
    "ThresholdReport",
    "format_tables",
    "format_thresholds",
    "run_table1",
    "run_table2",
    "run_table4",
    "run_tables",
    "run_thresholds",
    "thresholds_payload",
]
