"""Table reproductions: Table I (attack surface), Table II (remapping I/O),
Table IV (simulation configuration) and the Section VI-A.5 threshold numbers.

:func:`run_tables` routes the four artifacts through the engine as ``"table"``
jobs so the CLI can regenerate and export them like any other grid.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

from repro.engine import EngineRunner, ExperimentSpec, Job, register_experiment

from repro.core.remapping import TABLE_II
from repro.security.analysis import (
    AttackComplexitySummary,
    derive_rerandomization_thresholds,
    summarize_attack_complexities,
)
from repro.security.parameters import SKYLAKE_PARAMETERS, AnalysisParameters
from repro.security.taxonomy import table_rows
from repro.sim.config import TABLE_IV_CONFIG, CPUConfig


def run_table1() -> list[dict[str, str]]:
    """Table I: the collision-based attack-surface classification."""
    return table_rows()


def run_table2() -> list[dict[str, object]]:
    """Table II: baseline vs STBPU remapping-function I/O widths."""
    rows = []
    for label, spec in TABLE_II.items():
        rows.append(
            {
                "function": label,
                "baseline_input_bits": spec.baseline_input_bits,
                "stbpu_input_bits": spec.stbpu_input_bits,
                "output_bits": spec.output_bits,
                "output": spec.output_description,
                "compression_ratio": round(spec.compression_ratio, 2),
            }
        )
    return rows


def run_table4(config: CPUConfig = TABLE_IV_CONFIG) -> dict[str, object]:
    """Table IV: the cycle-approximate CPU configuration."""
    return {
        "ISA": "x86-64-like functional branch model",
        "frequency_ghz": config.frequency_ghz,
        "issue_width": config.issue_width,
        "rob_entries": config.rob_entries,
        "iq_entries": config.iq_entries,
        "lq_entries": config.lq_entries,
        "sq_entries": config.sq_entries,
        "btb_entries": config.bpu.btb_entries,
        "btb_ways": config.bpu.btb_ways,
        "rsb_entries": config.bpu.rsb_entries,
        "misprediction_penalty_cycles": config.misprediction_penalty_cycles,
    }


@dataclass(slots=True)
class ThresholdReport:
    """The Section VI-A.5 / VII-A numbers: complexities and derived thresholds."""

    complexities: AttackComplexitySummary
    misprediction_threshold_r005: int
    eviction_threshold_r005: int

    #: The values the paper reports, for side-by-side comparison.
    paper_btb_reuse_mispredictions: float = 6.9e8
    paper_btb_reuse_evictions: float = 2.0 ** 21
    paper_pht_reuse_mispredictions: float = 8.38e5
    paper_btb_eviction_evictions: float = 5.3e5
    paper_injection_mispredictions: float = 2.0 ** 31
    paper_misprediction_threshold_r005: float = 4.15e4
    paper_eviction_threshold_r005: float = 2.65e4


def run_thresholds(parameters: AnalysisParameters = SKYLAKE_PARAMETERS) -> ThresholdReport:
    """Recompute every attack complexity and the r = 0.05 thresholds."""
    complexities = summarize_attack_complexities(parameters)
    config = derive_rerandomization_thresholds(parameters, r=0.05)
    return ThresholdReport(
        complexities=complexities,
        misprediction_threshold_r005=config.misprediction_threshold,
        eviction_threshold_r005=config.eviction_threshold,
    )


def thresholds_payload() -> dict[str, float]:
    """The threshold report flattened to a JSON-able dict (engine table job)."""
    report = run_thresholds()
    payload = {f"measured_{key}": value
               for key, value in asdict(report.complexities).items()}
    payload.update(
        misprediction_threshold_r005=float(report.misprediction_threshold_r005),
        eviction_threshold_r005=float(report.eviction_threshold_r005),
        paper_btb_reuse_mispredictions=report.paper_btb_reuse_mispredictions,
        paper_btb_reuse_evictions=report.paper_btb_reuse_evictions,
        paper_pht_reuse_mispredictions=report.paper_pht_reuse_mispredictions,
        paper_btb_eviction_evictions=report.paper_btb_eviction_evictions,
        paper_injection_mispredictions=report.paper_injection_mispredictions,
        paper_misprediction_threshold_r005=report.paper_misprediction_threshold_r005,
        paper_eviction_threshold_r005=report.paper_eviction_threshold_r005,
    )
    return payload


#: The four table artifacts, in report order.
TABLE_NAMES: tuple[str, ...] = ("table1", "table2", "table4", "thresholds")


def tables_jobs() -> list[Job]:
    """One engine ``table`` job per artifact."""
    return [
        Job(index=index, kind="table", params=(("table", name),))
        for index, name in enumerate(TABLE_NAMES)
    ]


def collect_tables(frame) -> dict[str, object]:
    """Reduce an executed tables frame to ``{table name: payload}``."""
    return {record.workload: record.payload for record in frame}


def run_tables(workers: int = 1) -> dict[str, object]:
    """Regenerate every table artifact through the engine runner."""
    return collect_tables(EngineRunner(workers=workers).run_jobs(tables_jobs()))


def format_tables(result: dict[str, object]) -> str:
    """Render all four table artifacts (JSON dumps plus the threshold table)."""
    lines = []
    for name in ("table1", "table2", "table4"):
        lines.append(f"{name}:")
        lines.append(json.dumps(result[name], indent=2, default=str))
    lines.append(format_thresholds_payload(result["thresholds"]))
    return "\n".join(lines)


def format_thresholds(report: ThresholdReport) -> str:
    c = report.complexities
    lines = [
        "attack complexity (events for 50% success)        measured        paper",
        f"BTB reuse side channel, mispredictions       {c.btb_reuse_mispredictions:14.3g} {report.paper_btb_reuse_mispredictions:12.3g}",
        f"BTB reuse side channel, evictions            {c.btb_reuse_evictions:14.3g} {report.paper_btb_reuse_evictions:12.3g}",
        f"PHT reuse side channel, mispredictions       {c.pht_reuse_mispredictions:14.3g} {report.paper_pht_reuse_mispredictions:12.3g}",
        f"BTB eviction side channel, evictions         {c.btb_eviction_evictions:14.3g} {report.paper_btb_eviction_evictions:12.3g}",
        f"Spectre v2 / RSB injection, mispredictions   {c.injection_mispredictions:14.3g} {report.paper_injection_mispredictions:12.3g}",
        f"misprediction threshold at r=0.05            {report.misprediction_threshold_r005:14d} {report.paper_misprediction_threshold_r005:12.3g}",
        f"eviction threshold at r=0.05                 {report.eviction_threshold_r005:14d} {report.paper_eviction_threshold_r005:12.3g}",
    ]
    return "\n".join(lines)


def format_thresholds_payload(payload: dict[str, float]) -> str:
    """Render the same side-by-side table from a flattened thresholds payload,
    so a caller holding the engine job's result need not recompute the report."""
    rows = [
        ("BTB reuse side channel, mispredictions",
         "measured_btb_reuse_mispredictions", "paper_btb_reuse_mispredictions"),
        ("BTB reuse side channel, evictions",
         "measured_btb_reuse_evictions", "paper_btb_reuse_evictions"),
        ("PHT reuse side channel, mispredictions",
         "measured_pht_reuse_mispredictions", "paper_pht_reuse_mispredictions"),
        ("BTB eviction side channel, evictions",
         "measured_btb_eviction_evictions", "paper_btb_eviction_evictions"),
        ("Spectre v2 / RSB injection, mispredictions",
         "measured_injection_mispredictions", "paper_injection_mispredictions"),
        ("misprediction threshold at r=0.05",
         "misprediction_threshold_r005", "paper_misprediction_threshold_r005"),
        ("eviction threshold at r=0.05",
         "eviction_threshold_r005", "paper_eviction_threshold_r005"),
    ]
    lines = ["attack complexity (events for 50% success)        measured        paper"]
    for label, measured_key, paper_key in rows:
        lines.append(
            f"{label:44s} {payload[measured_key]:14.3g} {payload[paper_key]:12.3g}"
        )
    return "\n".join(lines)


register_experiment(ExperimentSpec(
    name="tables",
    description="Tables I/II/IV and the threshold numbers",
    kind="table",
    build_jobs=lambda params: tables_jobs(),
    post_process=lambda frame, params: collect_tables(frame),
    formatter=format_tables,
))


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_thresholds(run_thresholds()))


if __name__ == "__main__":  # pragma: no cover
    main()
