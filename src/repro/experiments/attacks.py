"""Attack matrix — every Table I vector against selectable protection models.

The driver expands an (attacks × models) matrix into engine ``kind="attack"``
jobs and runs them serially or on the process pool.  Each cell reports the
attack's success metric (detection/recovery accuracy, speculation-to-gadget
rate, or induced slowdown, depending on the vector), whether it crossed the
attack's success threshold, and whether the target model advertised a
protection mechanism.  Running the same matrix against ``baseline`` and the
``ST_*`` models reproduces the paper's Table I claim: every vector that
succeeds on the unprotected BPU is defeated or reduced to chance by STBPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    DEFAULT_ATTACK_PARAMS,
    EngineRunner,
    ExperimentSpec,
    Job,
    Option,
    ResultFrame,
    attack_names,
    derive_job_seed,
    register_experiment,
)
from repro.engine.grid import as_spec

#: Models every attack is run against unless the caller narrows the list.
DEFAULT_ATTACK_MODELS: tuple[str, ...] = ("baseline", "ST_SKLCond")

__all__ = [
    "DEFAULT_ATTACK_MODELS",
    "DEFAULT_ATTACK_PARAMS",  # canonical home: repro.engine.runner
    "AttackMatrixResult",
    "attack_matrix_jobs",
    "collect_attack_matrix",
    "run_attack_matrix",
    "format_attack_matrix",
]


@dataclass(slots=True)
class AttackMatrixResult:
    """The executed matrix plus the orderings needed to render it."""

    frame: ResultFrame
    attack_order: list[str]
    model_order: list[str] = field(default_factory=list)


def attack_matrix_jobs(
    attacks: list[str] | None = None,
    models: list[str] | None = None,
    seed: int = 7,
) -> list[Job]:
    """Expand the (attacks × models) matrix into deterministic engine jobs.

    Every job derives its own seed from (grid seed, model, attack), so
    parallel execution is bit-identical to serial and adding a row never
    reseeds existing cells.
    """
    chosen_attacks = list(attacks) if attacks else attack_names()
    known = set(attack_names())
    for name in chosen_attacks:
        if name not in known:
            raise ValueError(
                f"unknown attack {name!r}; known attacks: {', '.join(sorted(known))}"
            )
    chosen_models = list(models) if models else list(DEFAULT_ATTACK_MODELS)
    jobs: list[Job] = []
    for attack in chosen_attacks:
        for model in chosen_models:
            spec = as_spec(model)
            jobs.append(
                Job(
                    index=len(jobs),
                    kind="attack",
                    model=spec,
                    seed=derive_job_seed(seed, spec.display_label, attack),
                    params=tuple(
                        sorted((("attack", attack),) + DEFAULT_ATTACK_PARAMS.get(attack, ()))
                    ),
                )
            )
    return jobs


def collect_attack_matrix(frame: ResultFrame) -> AttackMatrixResult:
    """Wrap an executed matrix frame with its render orderings."""
    return AttackMatrixResult(
        frame=frame,
        attack_order=frame.workloads(),
        model_order=frame.models(),
    )


def run_attack_matrix(
    attacks: list[str] | None = None,
    models: list[str] | None = None,
    seed: int = 7,
    workers: int = 1,
) -> AttackMatrixResult:
    """Run the attack matrix and return the populated result frame."""
    jobs = attack_matrix_jobs(attacks=attacks, models=models, seed=seed)
    return collect_attack_matrix(EngineRunner(workers=workers).run_jobs(jobs))


def format_attack_matrix(result: AttackMatrixResult) -> str:
    """Render the matrix as an aligned text table (one row per attack)."""
    frame = result.frame
    width = max([len("attack")] + [len(name) for name in result.attack_order]) + 2
    lines = [
        f"{'attack':{width}s}"
        + "".join(f"{model:>28s}" for model in result.model_order)
    ]
    for attack in result.attack_order:
        cells = []
        for model in result.model_order:
            record = frame.record(model, attack)
            verdict = "breached" if record.metrics.get("success") else "held"
            cells.append(f"{record.metrics.get('success_metric', 0.0):18.3f} {verdict:>9s}")
        lines.append(f"{attack:{width}s}" + "".join(cells))
    return "\n".join(lines)


register_experiment(ExperimentSpec(
    name="attacks",
    description="Table I attack matrix against selectable protection models",
    kind="attack",
    default_seed=7,
    options=(
        Option("attacks", nargs="*", help="attack names to run (default: all)"),
        Option("models", nargs="*",
               help="registry model names to target (default: baseline ST_SKLCond)"),
        Option("seed", type=int, default=None, help="matrix seed"),
    ),
    build_jobs=lambda params: attack_matrix_jobs(
        attacks=params["attacks"] or None,
        models=params["models"] or None,
        seed=params["seed"],
    ),
    post_process=lambda frame, params: collect_attack_matrix(frame),
    formatter=format_attack_matrix,
    serializer=lambda result: result.frame.to_dict(),
))


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_attack_matrix(run_attack_matrix()))


if __name__ == "__main__":  # pragma: no cover
    main()
