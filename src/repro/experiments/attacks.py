"""Attack matrix — every Table I vector against selectable protection models.

The driver expands an (attacks × models) matrix into engine ``kind="attack"``
jobs and runs them serially or on the process pool.  Each cell reports the
attack's success metric (detection/recovery accuracy, speculation-to-gadget
rate, or induced slowdown, depending on the vector), whether it crossed the
attack's success threshold, and whether the target model advertised a
protection mechanism.  Running the same matrix against ``baseline`` and the
``ST_*`` models reproduces the paper's Table I claim: every vector that
succeeds on the unprotected BPU is defeated or reduced to chance by STBPU.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine import (
    EngineRunner,
    Job,
    ResultFrame,
    attack_names,
    derive_job_seed,
)
from repro.engine.grid import as_spec

#: Models every attack is run against unless the caller narrows the list.
DEFAULT_ATTACK_MODELS: tuple[str, ...] = ("baseline", "ST_SKLCond")

#: Default attack-specific work parameters, sized for minutes-long matrices.
DEFAULT_ATTACK_PARAMS: dict[str, tuple[tuple[str, object], ...]] = {
    "spectre_v2": (("attempts", 150),),
    "spectre_rsb": (("attempts", 150),),
    "trojan": (("trials", 100),),
    "btb_reuse": (("trials", 150),),
    "pht_reuse": (("secret_bits", 96),),
    "btb_eviction": (("trials", 60),),
    "rsb_overflow": (("trials", 60),),
    "dos": (("rounds", 30),),
}


@dataclass(slots=True)
class AttackMatrixResult:
    """The executed matrix plus the orderings needed to render it."""

    frame: ResultFrame
    attack_order: list[str]
    model_order: list[str] = field(default_factory=list)


def attack_matrix_jobs(
    attacks: list[str] | None = None,
    models: list[str] | None = None,
    seed: int = 7,
) -> list[Job]:
    """Expand the (attacks × models) matrix into deterministic engine jobs.

    Every job derives its own seed from (grid seed, model, attack), so
    parallel execution is bit-identical to serial and adding a row never
    reseeds existing cells.
    """
    chosen_attacks = list(attacks) if attacks else attack_names()
    known = set(attack_names())
    for name in chosen_attacks:
        if name not in known:
            raise ValueError(
                f"unknown attack {name!r}; known attacks: {', '.join(sorted(known))}"
            )
    chosen_models = list(models) if models else list(DEFAULT_ATTACK_MODELS)
    jobs: list[Job] = []
    for attack in chosen_attacks:
        for model in chosen_models:
            spec = as_spec(model)
            jobs.append(
                Job(
                    index=len(jobs),
                    kind="attack",
                    model=spec,
                    seed=derive_job_seed(seed, spec.display_label, attack),
                    params=tuple(
                        sorted((("attack", attack),) + DEFAULT_ATTACK_PARAMS.get(attack, ()))
                    ),
                )
            )
    return jobs


def run_attack_matrix(
    attacks: list[str] | None = None,
    models: list[str] | None = None,
    seed: int = 7,
    workers: int = 1,
) -> AttackMatrixResult:
    """Run the attack matrix and return the populated result frame."""
    jobs = attack_matrix_jobs(attacks=attacks, models=models, seed=seed)
    frame = EngineRunner(workers=workers).run_jobs(jobs)
    return AttackMatrixResult(
        frame=frame,
        attack_order=frame.workloads(),
        model_order=frame.models(),
    )


def format_attack_matrix(result: AttackMatrixResult) -> str:
    """Render the matrix as an aligned text table (one row per attack)."""
    frame = result.frame
    width = max([len("attack")] + [len(name) for name in result.attack_order]) + 2
    lines = [
        f"{'attack':{width}s}"
        + "".join(f"{model:>28s}" for model in result.model_order)
    ]
    for attack in result.attack_order:
        cells = []
        for model in result.model_order:
            record = frame.record(model, attack)
            verdict = "breached" if record.metrics.get("success") else "held"
            cells.append(f"{record.metrics.get('success_metric', 0.0):18.3f} {verdict:>9s}")
        lines.append(f"{attack:{width}s}" + "".join(cells))
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - CLI convenience
    print(format_attack_matrix(run_attack_matrix()))


if __name__ == "__main__":  # pragma: no cover
    main()
