"""STBPU reproduction package.

This package is a from-scratch Python reproduction of "STBPU: A Reasonably
Secure Branch Prediction Unit" (DSN 2022).  It contains:

* ``repro.bpu`` — a functional model of a Skylake-style branch prediction
  unit (BTB, PHT, RSB, GHR/BHB) plus TAGE-SC-L and Perceptron predictors and
  microcode-protection baselines,
* ``repro.core`` — the STBPU mechanisms themselves: secret tokens, keyed
  remapping functions, XOR target encryption, event monitoring and
  re-randomization,
* ``repro.hashgen`` — the automated remapping-function generator from
  Section V of the paper,
* ``repro.security`` — the analytical security model and executable attack
  simulations from Section VI,
* ``repro.trace`` — synthetic branch-trace workloads standing in for the
  paper's Intel PT captures,
* ``repro.sim`` — the trace-driven BPU simulator and a cycle-approximate
  out-of-order CPU model standing in for gem5,
* ``repro.experiments`` — drivers that regenerate every table and figure in
  the paper's evaluation.
"""

from repro.version import __version__

__all__ = ["__version__"]
