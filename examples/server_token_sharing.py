"""Selective secret-token sharing for prefork server workloads.

The paper's Section IV-A notes that a server spawning one worker process per
connection benefits from sharing accumulated BPU state between workers, and
that STBPU lets the OS opt specific processes into sharing one ST while still
isolating unrelated software.  This example compares three policies on an
Apache-prefork-style workload:

* unprotected baseline (everything shared),
* STBPU with one token per worker (full isolation), and
* STBPU with a shared token for the worker pool (the OS policy the paper
  recommends for same-image processes).

Run with: ``python examples/server_token_sharing.py``
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bpu import make_unprotected_baseline
from repro.core import STBPUOperatingSystem, make_stbpu_skl
from repro.sim import TraceSimulator
from repro.trace import generate_trace


def main() -> None:
    trace = generate_trace("apache2_prefork_c128", seed=5, branch_count=40_000)
    workers = sorted(ctx for ctx in trace.context_ids if ctx >= 0)
    print(f"Apache prefork trace: {trace.branch_count} branches, "
          f"{len(workers)} worker processes\n")

    simulator = TraceSimulator(warmup_branches=4_000)

    baseline = simulator.run(make_unprotected_baseline(), trace)

    isolated = simulator.run(make_stbpu_skl(seed=5), trace)

    shared_hardware = make_stbpu_skl(seed=5)
    os_layer = STBPUOperatingSystem(shared_hardware)
    for worker in workers:
        os_layer.register_process(worker, name=f"apache-worker-{worker}",
                                  sharing_group="apache-pool")
    shared = simulator.run(shared_hardware, trace)

    print("policy                                   OAE accuracy   vs baseline")
    for label, result in (
        ("unprotected shared BPU", baseline),
        ("STBPU, one token per worker", isolated),
        ("STBPU, pool-shared token (OS policy)", shared),
    ):
        ratio = result.report.oae_accuracy / baseline.report.oae_accuracy
        print(f"{label:40s} {result.report.oae_accuracy:12.4f} {ratio:10.3f}")

    print("\nSharing one token across same-image workers recovers most of the history "
          "reuse the unprotected design enjoys, while unrelated processes (and the "
          "kernel) still use their own tokens.")


if __name__ == "__main__":
    main()
