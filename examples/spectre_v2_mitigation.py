"""Spectre v2 / SpectreRSB mitigation demo.

Runs the branch-target-injection attacks from the paper's Table I against the
unprotected predictor and against STBPU, showing that the attacker steers the
victim's speculation into its gadget on the unprotected design and never does
under STBPU (the planted target decrypts to a garbage address).

Run with: ``python examples/spectre_v2_mitigation.py``
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bpu import make_unprotected_baseline
from repro.core import make_stbpu_skl
from repro.security.attacks import SpectreRSBInjection, SpectreV2Injection, TransientTrojanAttack


def run_attack(name, attack_class, **kwargs) -> None:
    unprotected = attack_class(make_unprotected_baseline(), seed=7).run(**kwargs)
    protected = attack_class(make_stbpu_skl(seed=7), seed=7).run(**kwargs)
    print(f"\n{name}")
    print(f"  unprotected BPU: gadget-speculation rate {unprotected.success_metric:.3f} "
          f"(success: {unprotected.success})")
    print(f"  STBPU          : gadget-speculation rate {protected.success_metric:.3f} "
          f"(success: {protected.success}), "
          f"attacker mispredictions observed: {protected.observation.attacker_mispredictions}")


def main() -> None:
    print("Branch target injection attacks: unprotected BPU vs STBPU")
    run_attack("Spectre v2 (BTB poisoning across processes)", SpectreV2Injection, attempts=300)
    run_attack("SpectreRSB (return stack poisoning)", SpectreRSBInjection, attempts=300)
    run_attack("Transient trojan (same-address-space aliasing)", TransientTrojanAttack, trials=200)
    print("\nUnder STBPU the victim decrypts planted targets with its own phi, so the "
          "speculative destination is effectively random; hitting a chosen gadget would "
          "take ~2^31 attempts, far beyond the re-randomization threshold.")


if __name__ == "__main__":
    main()
