"""Quickstart: protect a branch predictor with STBPU and measure the cost.

This example builds the unprotected Skylake-style predictor and its
STBPU-protected counterpart, replays the same synthetic SPEC-like workload
through both, and prints the accuracy difference — the headline claim of the
paper (STBPU costs about 1-2% accuracy while removing deterministic branch
collisions).

Run with: ``python examples/quickstart.py``
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bpu import make_unprotected_baseline
from repro.core import make_stbpu_skl
from repro.sim import TraceSimulator
from repro.trace import generate_trace


def main() -> None:
    print("Generating a synthetic 505.mcf-like branch trace ...")
    trace = generate_trace("505.mcf", seed=1, branch_count=30_000)
    print(f"  {trace.branch_count} branches, {trace.event_count} OS events")

    simulator = TraceSimulator(warmup_branches=3_000)

    baseline = simulator.run(make_unprotected_baseline(), trace)
    protected = simulator.run(make_stbpu_skl(seed=1), trace)

    print("\nmodel            OAE accuracy   direction   target    re-randomizations")
    for result in (baseline, protected):
        report = result.report
        print(f"{report.model:16s} {report.oae_accuracy:12.4f} {report.direction_accuracy:10.4f} "
              f"{report.target_accuracy:9.4f} {report.rerandomizations:12d}")

    penalty = 1.0 - protected.report.oae_accuracy / baseline.report.oae_accuracy
    print(f"\nSTBPU accuracy penalty vs unprotected baseline: {penalty * 100:.2f}% "
          "(paper reports ~1.3% on average)")


if __name__ == "__main__":
    main()
