"""Quickstart: protect a branch predictor with STBPU and measure the cost.

This example declares a two-model engine grid — the unprotected Skylake-style
predictor and its STBPU-protected counterpart, both addressed by registry
name — over one synthetic SPEC-like workload, runs it through the engine, and
prints the accuracy difference: the headline claim of the paper (STBPU costs
about 1-2% accuracy while removing deterministic branch collisions).

Run with: ``python examples/quickstart.py``
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.engine import EngineRunner, ExperimentScale, SimulationGrid


def main() -> None:
    workload = "505.mcf"
    grid = SimulationGrid(
        kind="trace",
        models=["baseline", "ST_SKLCond"],
        workloads=[workload],
        scale=ExperimentScale(branch_count=30_000, warmup_branches=3_000, seed=1),
    )
    print(f"Replaying a synthetic {workload}-like trace through {list(grid.models)} ...")
    frame = EngineRunner().run(grid)

    print("\nmodel            OAE accuracy   direction   target    re-randomizations")
    for record in frame:
        metrics = record.metrics
        print(f"{record.model:16s} {metrics['oae_accuracy']:12.4f} "
              f"{metrics['direction_accuracy']:10.4f} {metrics['target_accuracy']:9.4f} "
              f"{int(metrics.get('rerandomizations', 0)):12d}")

    normalized = frame.normalized("oae_accuracy", "baseline")[workload]
    penalty = 1.0 - normalized["ST_SKLCond"]
    print(f"\nSTBPU accuracy penalty vs unprotected baseline: {penalty * 100:.2f}% "
          "(paper reports ~1.3% on average)")
    print("Try the CLI next:  python -m repro figure3 --scale fast --workers 4")


if __name__ == "__main__":
    main()
