"""Side-channel study: BranchScope-style and eviction-based leaks, with and
without STBPU, plus the event footprint an attacker generates.

The script reproduces the Section VI argument end to end:

1. run the reuse- and eviction-based side channels against both designs,
2. show the analytical event cost of a *successful* attack on STBPU, and
3. show that the OS-programmed re-randomization threshold (Γ = r·C) fires
   orders of magnitude earlier.

Run with: ``python examples/side_channel_study.py``
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.bpu import make_unprotected_baseline
from repro.core import make_stbpu_skl
from repro.security import derive_rerandomization_thresholds, summarize_attack_complexities
from repro.security.attacks import (
    BTBEvictionSideChannel,
    BTBReuseSideChannel,
    PHTReuseSideChannel,
)


def main() -> None:
    print("1. Side-channel accuracy (attacker inferring victim behaviour)\n")
    attacks = [
        ("BTB reuse (Jump-over-ASLR style)", BTBReuseSideChannel, dict(trials=150)),
        ("PHT reuse (BranchScope style)", PHTReuseSideChannel, dict(secret_bits=128)),
        ("BTB eviction (prime+probe)", BTBEvictionSideChannel, dict(trials=60)),
    ]
    for name, attack_class, kwargs in attacks:
        unprotected = attack_class(make_unprotected_baseline(), seed=3).run(**kwargs)
        protected = attack_class(make_stbpu_skl(seed=3), seed=3).run(**kwargs)
        print(f"  {name:36s} unprotected {unprotected.success_metric:5.2f}   "
              f"STBPU {protected.success_metric:5.2f}")

    print("\n2. Analytical cost of defeating STBPU by brute force (Section VI)\n")
    summary = summarize_attack_complexities()
    print(f"  BTB reuse attack needs ~{summary.btb_reuse_mispredictions:.2e} mispredictions")
    print(f"  PHT reuse attack needs ~{summary.pht_reuse_mispredictions:.2e} mispredictions")
    print(f"  BTB eviction attack needs ~{summary.btb_eviction_evictions:.2e} evictions")
    print(f"  target injection needs ~{summary.injection_mispredictions:.2e} mispredictions")

    print("\n3. Re-randomization thresholds programmed by the OS (r = 0.05)\n")
    config = derive_rerandomization_thresholds(r=0.05)
    print(f"  misprediction threshold: {config.misprediction_threshold}")
    print(f"  eviction threshold     : {config.eviction_threshold}")
    print("  => the secret token is refreshed ~20x before the cheapest attack reaches "
          "a 50% success probability.")


if __name__ == "__main__":
    main()
