"""Property-based tests (hypothesis) on the core data structures and invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.common import fold_bits
from repro.bpu.pht import SaturatingCounter
from repro.bpu.rsb import ReturnStackBuffer
from repro.core.encryption import XorTargetCodec
from repro.core.remapping import STMappingProvider, keyed_remap
from repro.core.secret_token import SecretToken
from repro.sim.metrics import harmonic_mean
from repro.trace.branch import VIRTUAL_ADDRESS_MASK, BranchRecord, BranchType

addresses = st.integers(min_value=0, max_value=(1 << 56) - 1)
tokens = st.integers(min_value=0, max_value=(1 << 64) - 1)
targets32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


@given(value=st.integers(min_value=0, max_value=(1 << 64) - 1),
       output_bits=st.integers(min_value=1, max_value=24))
def test_fold_bits_stays_in_range(value, output_bits):
    assert 0 <= fold_bits(value, 64, output_bits) < (1 << output_bits)


@given(psi=st.integers(min_value=0, max_value=(1 << 32) - 1), ip=addresses,
       output_bits=st.integers(min_value=1, max_value=25),
       domain=st.integers(min_value=0, max_value=64))
def test_keyed_remap_is_deterministic_and_bounded(psi, ip, output_bits, domain):
    first = keyed_remap(psi, ip, output_bits=output_bits, domain=domain)
    second = keyed_remap(psi, ip, output_bits=output_bits, domain=domain)
    assert first == second
    assert 0 <= first < (1 << output_bits)


@given(value=tokens)
def test_secret_token_halves_recompose(value):
    token = SecretToken(value)
    assert SecretToken.from_halves(token.psi, token.phi).value == value & ((1 << 64) - 1)


@given(phi=st.integers(min_value=0, max_value=(1 << 32) - 1), target=targets32)
def test_xor_codec_roundtrips_any_target(phi, target):
    codec = XorTargetCodec(SecretToken.from_halves(0, phi))
    assert codec.decode(codec.encode(target)) == target


@given(psi=st.integers(min_value=0, max_value=(1 << 32) - 1), ip=addresses)
def test_st_mapping_outputs_respect_structure_bounds(psi, ip):
    provider = STMappingProvider(SecretToken.from_halves(psi, 0))
    key = provider.btb_mode1(ip)
    sizes = provider.sizes
    assert 0 <= key.index < sizes.btb_sets
    assert 0 <= key.tag < (1 << sizes.btb_tag_bits)
    assert 0 <= key.offset < (1 << sizes.btb_offset_bits)


@given(updates=st.lists(st.booleans(), min_size=1, max_size=64),
       bits=st.integers(min_value=1, max_value=4))
def test_saturating_counter_never_leaves_its_range(updates, bits):
    counter = SaturatingCounter(bits=bits, value=0)
    for taken in updates:
        counter.update(taken)
        assert 0 <= counter.value <= counter.maximum


@given(ip=addresses, target=addresses)
def test_btb_lookup_after_update_hits_with_correct_target(ip, target):
    btb = BranchTargetBuffer()
    btb.update(ip, target)
    result = btb.lookup(ip)
    assert result.hit
    # The BTB stores 32 target bits and re-extends with the branch's upper bits.
    assert result.predicted_target & 0xFFFF_FFFF == target & 0xFFFF_FFFF


@given(pushes=st.lists(addresses, min_size=1, max_size=12))
def test_rsb_is_last_in_first_out(pushes):
    rsb = ReturnStackBuffer(entries=16)
    for address in pushes:
        rsb.push(address)
    for address in reversed(pushes):
        popped = rsb.pop(0)
        assert not popped.underflow
        assert popped.predicted_target & 0xFFFF_FFFF == address & 0xFFFF_FFFF


@given(ip=st.integers(min_value=0, max_value=(1 << 64) - 1),
       target=st.integers(min_value=0, max_value=(1 << 64) - 1))
def test_branch_record_addresses_always_canonical(ip, target):
    record = BranchRecord(ip=ip, target=target, taken=True,
                          branch_type=BranchType.DIRECT_JUMP)
    assert record.ip <= VIRTUAL_ADDRESS_MASK
    assert record.target <= VIRTUAL_ADDRESS_MASK


@given(values=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=8))
@settings(max_examples=50)
def test_harmonic_mean_bounded_by_min_and_max(values):
    mean = harmonic_mean(values)
    assert min(values) - 1e-9 <= mean <= max(values) + 1e-9


@given(psi_a=st.integers(min_value=0, max_value=(1 << 32) - 1),
       psi_b=st.integers(min_value=0, max_value=(1 << 32) - 1))
@settings(max_examples=40)
def test_different_tokens_rarely_share_full_btb_mappings(psi_a, psi_b):
    if psi_a == psi_b:
        return
    a = STMappingProvider(SecretToken.from_halves(psi_a, 0))
    b = STMappingProvider(SecretToken.from_halves(psi_b, 0))
    sample = [0x40_0000 + i * 64 for i in range(16)]
    identical = sum(1 for ip in sample if a.btb_mode1(ip) == b.btb_mode1(ip))
    # With 22 bits of output per address, 16 simultaneous collisions are
    # astronomically unlikely; allow a small number of coincidences.
    assert identical < len(sample)
