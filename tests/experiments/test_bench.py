"""Tests for the replay-throughput bench command and its JSON artifact."""

import json

from repro.bench import (
    BENCH_SEQUENCE,
    PR1_BASELINE_SECONDS,
    bench_grids,
    format_bench,
    run_bench,
    write_bench,
)
from repro.cli import main


class TestBenchGrids:
    def test_every_grid_has_a_recorded_baseline(self):
        for quick in (True, False):
            mode = "quick" if quick else "full"
            for name in bench_grids(quick):
                assert f"{name}.{mode}" in PR1_BASELINE_SECONDS

    def test_quick_grids_are_smaller(self):
        quick = {name: len(grid.jobs()) for name, grid in bench_grids(True).items()}
        full = {name: len(grid.jobs()) for name, grid in bench_grids(False).items()}
        assert set(quick) == set(full) == {"figure3", "cpu", "smt"}
        assert all(quick[name] <= full[name] for name in quick)


class TestBenchRun:
    def test_quick_bench_artifact_structure(self, tmp_path):
        report = run_bench(quick=True)
        path = tmp_path / "BENCH_test.json"
        write_bench(report, str(path))
        payload = json.loads(path.read_text())
        assert payload["format"] == BENCH_SEQUENCE
        assert payload["mode"] == "quick"
        assert set(payload["benches"]) == {"figure3", "cpu", "smt"}
        figure3 = payload["benches"]["figure3"]
        assert figure3["jobs"] == 20
        assert figure3["seconds"] > 0
        assert figure3["branches_per_second"] > 0
        assert len(figure3["result_sha256"]) == 64
        # The speedup against the recorded pre-columnar baseline is tracked.
        assert "speedup" in figure3
        assert figure3["baseline_seconds"] == PR1_BASELINE_SECONDS["figure3.quick"]
        # Rendering never fails on a populated report.
        assert "figure3" in format_bench(report)

    def test_cli_bench_writes_artifact(self, tmp_path, capsys):
        output = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--quick", "--output", str(output)]) == 0
        assert output.exists()
        captured = capsys.readouterr()
        assert "bench artifact written" in captured.out
        payload = json.loads(output.read_text())
        assert payload["mode"] == "quick"
