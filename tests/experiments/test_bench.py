"""Tests for the replay-throughput bench command and its JSON artifact."""

import json

import pytest

from repro.bench import (
    BENCH_SEQUENCE,
    PR1_BASELINE_SECONDS,
    bench_grids,
    check_regression,
    format_bench,
    run_bench,
    write_bench,
)
from repro.cli import main
from repro.engine import run_experiment


class TestBenchGrids:
    def test_every_grid_has_a_recorded_baseline(self):
        for quick in (True, False):
            mode = "quick" if quick else "full"
            for name in bench_grids(quick):
                assert f"{name}.{mode}" in PR1_BASELINE_SECONDS

    def test_quick_grids_are_smaller(self):
        quick = {name: len(grid.jobs()) for name, grid in bench_grids(True).items()}
        full = {name: len(grid.jobs()) for name, grid in bench_grids(False).items()}
        assert set(quick) == set(full) == {"figure3", "cpu", "smt"}
        assert all(quick[name] <= full[name] for name in quick)


class TestBenchRun:
    def test_quick_bench_artifact_structure(self, tmp_path):
        report = run_bench(quick=True)
        path = tmp_path / "BENCH_test.json"
        write_bench(report, str(path))
        payload = json.loads(path.read_text())
        assert payload["format"] == BENCH_SEQUENCE
        assert payload["mode"] == "quick"
        assert payload["backend"] in ("reference", "fast", "vector")
        assert set(payload["benches"]) == {"figure3.quick", "cpu.quick", "smt.quick"}
        figure3 = payload["benches"]["figure3.quick"]
        assert figure3["jobs"] == 20
        assert figure3["seconds"] > 0
        assert figure3["branches_per_second"] > 0
        assert len(figure3["result_sha256"]) == 64
        # The speedup against the recorded pre-columnar baseline is tracked.
        assert "speedup" in figure3
        assert figure3["baseline_seconds"] == PR1_BASELINE_SECONDS["figure3.quick"]
        # The bounded trace cache reports its counters into the artifact.
        assert payload["trace_cache"]["capacity"] >= 1
        assert payload["trace_cache"]["misses"] >= 0
        # Format 5: the result-store cold/warm measurement is recorded,
        # keyed by mode (like benches) so cross-mode merges keep both.
        store = payload["store"]["quick"]
        assert store["grid"] == "figure3"
        assert store["hits"] == store["misses"] == store["writes"] == store["jobs"]
        assert store["warm_jobs_executed"] == 0
        assert store["warm_matches_cold"] is True
        timing = store["warm_vs_cold_seconds"]
        assert timing["cold"] > 0 and timing["warm"] >= 0
        # Format 6: the per-model predictors block is recorded, keyed by
        # mode, with each model's kernel class and its gap vs the composite.
        predictors = payload["predictors"]["quick"]
        assert predictors["reference"] == "baseline"
        models = predictors["models"]
        assert set(models) == set(run_experiment("list-models"))
        assert models["baseline"]["vector"] == "kernel"
        assert models["baseline"]["gap_vs_vector"] == 1.0
        assert models["TAGE_SC_L_64KB"]["vector"] == "guarded"
        for entry in models.values():
            assert entry["branches_per_second"] > 0
            assert entry["gap_vs_vector"] > 0
        # Format 7: the async serving tier is measured twice — one worker
        # (the old global-lock behaviour) versus a concurrent pool — with
        # identical envelopes required from both lanes.
        serve = payload["serve"]["quick"]
        assert serve["scenarios"] >= 2
        assert serve["serialized"]["workers"] == 1
        assert serve["concurrent"]["workers"] > 1
        assert serve["serialized"]["jobs_per_second"] > 0
        assert serve["concurrent"]["jobs_per_second"] > 0
        assert serve["all_done"] is True
        assert serve["concurrent_matches_serialized"] is True
        # The obs tracer's per-phase breakdown rides along in each entry.
        phases = figure3["phases"]
        assert set(phases) >= {"partition", "dispatch", "execute", "merge"}
        assert all(seconds >= 0 for seconds in phases.values())
        assert "phases (figure3)" in format_bench(report)
        # Rendering never fails on a populated report.
        assert "figure3" in format_bench(report)
        assert "result store" in format_bench(report)
        assert "predictors" in format_bench(report)
        assert "serve" in format_bench(report)

    def test_write_bench_merges_modes(self, tmp_path):
        path = tmp_path / "BENCH_merge.json"
        report = run_bench(quick=True)
        write_bench(report, str(path))
        # A second write of the same mode overwrites in place…
        write_bench(report, str(path))
        payload = json.loads(path.read_text())
        assert set(payload["benches"]) == {"figure3.quick", "cpu.quick", "smt.quick"}
        # …and foreign-mode entries survive a merge, store block included.
        payload["benches"]["figure3.full"] = dict(
            payload["benches"]["figure3.quick"], mode="full")
        payload["store"]["full"] = dict(payload["store"]["quick"])
        payload["predictors"]["full"] = dict(payload["predictors"]["quick"])
        payload["serve"]["full"] = dict(payload["serve"]["quick"])
        path.write_text(json.dumps(payload))
        write_bench(report, str(path))
        merged = json.loads(path.read_text())
        assert "figure3.full" in merged["benches"]
        assert "figure3.quick" in merged["benches"]
        assert set(merged["store"]) == {"full", "quick"}
        assert set(merged["predictors"]) == {"full", "quick"}
        assert set(merged["serve"]) == {"full", "quick"}

    def test_cli_bench_writes_artifact(self, tmp_path, capsys):
        output = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--quick", "--output", str(output)]) == 0
        assert output.exists()
        captured = capsys.readouterr()
        assert "bench artifact written" in captured.out
        payload = json.loads(output.read_text())
        assert payload["mode"] == "quick"


class TestBenchCheck:
    def _report_and_artifact(self, tmp_path):
        report = run_bench(quick=True)
        path = tmp_path / "BENCH_ref.json"
        write_bench(report, str(path))
        return report, path

    def test_check_passes_against_own_artifact(self, tmp_path):
        report, path = self._report_and_artifact(tmp_path)
        assert check_regression(report, str(path)) == []

    def test_check_fails_on_throughput_drop(self, tmp_path):
        report, path = self._report_and_artifact(tmp_path)
        inflated = json.loads(path.read_text())
        for entry in inflated["benches"].values():
            entry["branches_per_second"] = entry["branches_per_second"] * 10
        path.write_text(json.dumps(inflated))
        failures = [failure for failure in check_regression(report, str(path))
                    if not failure.startswith("predictors.")]
        assert len(failures) == len(report.timings)
        assert "below the recorded" in failures[0]
        # The message names the regressed entry and the measured drop: a
        # 10x-inflated recording makes the run read as a 90% drop.
        assert failures[0].startswith(report.timings[0].key + ":")
        assert "90.0% (tolerance 20%)" in failures[0]

    def test_check_gates_the_predictors_block(self, tmp_path):
        report, path = self._report_and_artifact(tmp_path)
        inflated = json.loads(path.read_text())
        for entry in inflated["predictors"]["quick"]["models"].values():
            entry["branches_per_second"] = entry["branches_per_second"] * 10
        path.write_text(json.dumps(inflated))
        failures = [failure for failure in check_regression(report, str(path))
                    if failure.startswith("predictors.quick.")]
        assert len(failures) == len(report.predictors["models"])

    def test_check_gates_the_serve_block(self, tmp_path):
        report, path = self._report_and_artifact(tmp_path)
        inflated = json.loads(path.read_text())
        for lane in ("serialized", "concurrent"):
            inflated["serve"]["quick"][lane]["jobs_per_second"] *= 10
        path.write_text(json.dumps(inflated))
        failures = [failure for failure in check_regression(report, str(path))
                    if failure.startswith("serve.quick.")]
        assert len(failures) == 2
        assert "jobs/s" in failures[0]

    def test_check_ignores_foreign_modes(self, tmp_path):
        report, path = self._report_and_artifact(tmp_path)
        renamed = json.loads(path.read_text())
        renamed["benches"] = {
            key.replace(".quick", ".full"): dict(entry, branches_per_second=1e12)
            for key, entry in renamed["benches"].items()
        }
        path.write_text(json.dumps(renamed))
        # Only same-mode keys are compared, so the absurd full-mode floor is moot.
        assert check_regression(report, str(path)) == []

    def test_check_reads_reference_before_writing(self, tmp_path, capsys):
        # --output and --check naming the same artifact must gate against the
        # *previous* contents, not the just-merged run (which would always pass).
        artifact = tmp_path / "BENCH_same.json"
        report = run_bench(quick=True)
        write_bench(report, str(artifact))
        inflated = json.loads(artifact.read_text())
        for entry in inflated["benches"].values():
            entry["branches_per_second"] = entry["branches_per_second"] * 10
        artifact.write_text(json.dumps(inflated))
        code = main(["bench", "--quick", "--output", str(artifact),
                     "--check", str(artifact)])
        assert code != 0
        assert "bench regression" in capsys.readouterr().err

    def test_check_tolerance_validated_before_running(self, capsys, tmp_path):
        reference = tmp_path / "BENCH_prev.json"
        write_bench(run_bench(quick=True), str(reference))
        import time

        started = time.perf_counter()
        code = main(["bench", "--quick", "--output", str(tmp_path / "o.json"),
                     "--check", str(reference), "--check-tolerance", "1.5"])
        elapsed = time.perf_counter() - started
        assert code != 0
        assert "check-tolerance" in capsys.readouterr().err
        assert elapsed < 1.0  # rejected before the timed run, not after
        assert not (tmp_path / "o.json").exists()

    def test_cli_check_gate_exits_nonzero(self, tmp_path, capsys):
        output = tmp_path / "BENCH_out.json"
        reference = tmp_path / "BENCH_prev.json"
        report = run_bench(quick=True)
        write_bench(report, str(reference))
        inflated = json.loads(reference.read_text())
        for entry in inflated["benches"].values():
            entry["branches_per_second"] = entry["branches_per_second"] * 10
        reference.write_text(json.dumps(inflated))
        code = main(["bench", "--quick", "--output", str(output),
                     "--check", str(reference)])
        assert code != 0
        assert "bench regression" in capsys.readouterr().err

    def test_check_reference_pass_through_cli(self, tmp_path, capsys):
        output = tmp_path / "BENCH_out.json"
        reference = tmp_path / "BENCH_prev.json"
        write_bench(run_bench(quick=True), str(reference))
        # Deflate the recorded throughput (grids and predictors alike) so
        # machine noise between the two timed runs cannot trip the 20%
        # floor: the gate logic, not the container's scheduler, is under
        # test here.
        deflated = json.loads(reference.read_text())
        for entry in deflated["benches"].values():
            entry["branches_per_second"] = entry["branches_per_second"] * 0.1
        for entry in deflated["predictors"]["quick"]["models"].values():
            entry["branches_per_second"] = entry["branches_per_second"] * 0.1
        for lane in ("serialized", "concurrent"):
            deflated["serve"]["quick"][lane]["jobs_per_second"] *= 0.1
        reference.write_text(json.dumps(deflated))
        assert main(["bench", "--quick", "--output", str(output),
                     "--check", str(reference)]) == 0


@pytest.mark.parametrize("quick", [True])
def test_report_backend_recorded(quick):
    report = run_bench(quick=quick)
    assert report.backend in ("reference", "fast", "vector")
