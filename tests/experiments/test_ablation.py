"""Tests for the STBPU design-choice ablation study."""

import pytest

from repro.experiments import ExperimentScale
from repro.experiments.ablation import format_ablation, run_ablation

_SCALE = ExperimentScale(branch_count=4_000, warmup_branches=400, seed=17)


@pytest.fixture(scope="module")
def ablation_result():
    return run_ablation(_SCALE)


class TestAblation:
    def test_reports_all_variants(self, ablation_result):
        variants = [row.variant for row in ablation_result.rows]
        assert variants == [
            "unprotected", "full STBPU", "remapping only",
            "encryption only", "no re-randomization",
        ]

    def test_unprotected_design_is_fully_attackable(self, ablation_result):
        row = ablation_result.row("unprotected")
        assert row.spectre_v2_rate > 0.9
        assert row.trojan_rate > 0.9

    def test_full_design_defeats_both_attacks(self, ablation_result):
        row = ablation_result.row("full STBPU")
        assert row.spectre_v2_rate == 0.0
        assert row.trojan_rate == 0.0

    def test_encryption_alone_misses_same_address_space_attacks(self, ablation_result):
        row = ablation_result.row("encryption only")
        assert row.spectre_v2_rate == 0.0
        assert row.trojan_rate > 0.9  # baseline truncated mapping still collides

    def test_every_protected_variant_keeps_accuracy(self, ablation_result):
        for row in ablation_result.rows:
            assert row.normalized_oae > 0.95

    def test_formatting_includes_every_variant(self, ablation_result):
        text = format_ablation(ablation_result)
        for row in ablation_result.rows:
            assert row.variant in text
