"""Tests for the experiment drivers (small-scale versions of every figure/table)."""

import pytest

from repro.experiments import (
    ExperimentScale,
    format_figure3,
    format_figure4,
    format_figure6,
    format_thresholds,
    run_figure2,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_table1,
    run_table2,
    run_table4,
    run_thresholds,
)

_SMALL = ExperimentScale(branch_count=4_000, warmup_branches=400, seed=13)


class TestTables:
    def test_table1_has_all_twelve_cells(self):
        rows = run_table1()
        assert len(rows) == 12
        assert {row["structure"] for row in rows} == {"BTB", "PHT", "RSB"}

    def test_table2_matches_paper_widths(self):
        rows = {row["function"]: row for row in run_table2()}
        assert rows["R1"]["stbpu_input_bits"] == 80
        assert rows["R1"]["output_bits"] == 22
        assert rows["R4"]["baseline_input_bits"] == 50
        assert rows["Rp"]["output_bits"] == 10

    def test_table4_reports_core_configuration(self):
        table = run_table4()
        assert table["btb_entries"] == 4096
        assert table["rob_entries"] == 192
        assert table["issue_width"] == 8

    def test_thresholds_close_to_paper(self):
        report = run_thresholds()
        assert report.complexities.pht_reuse_mispredictions == pytest.approx(8.38e5, rel=0.05)
        assert report.misprediction_threshold_r005 == pytest.approx(4.15e4, rel=0.05)
        assert report.eviction_threshold_r005 == pytest.approx(2.65e4, rel=0.05)
        assert "paper" in format_thresholds(report)


class TestFigure2:
    def test_reference_design_is_single_cycle_and_valid(self):
        result = run_figure2(attempts_per_function=4, uniformity_samples=1_500,
                             avalanche_samples=30)
        assert result.reference_single_cycle
        assert result.reference_critical_path <= 45
        assert 0.35 < result.reference_avalanche_mean < 0.65
        # The generator finds at least one valid candidate for most functions.
        assert len(result.generated) >= 3


class TestFigure3:
    def test_small_run_reproduces_model_ordering(self):
        result = run_figure3(_SMALL, workloads=["505.mcf", "apache2_prefork_c128",
                                                "mysql_64con_50s"])
        averages = result.averages()
        baseline_name = result.model_order[0]
        assert averages[baseline_name] == pytest.approx(1.0)
        # STBPU stays within a few percent of the unprotected baseline ...
        assert averages["ST_SKLCond"] > 0.97
        # ... and beats the flushing-based microcode protections.
        assert averages["ST_SKLCond"] > averages["ucode_protection_1"]
        assert averages["ST_SKLCond"] > averages["ucode_protection_2"]
        assert "average" in format_figure3(result)


class TestFigure4:
    def test_single_workload_deltas_are_small(self):
        result = run_figure4(_SMALL, workloads=("505.mcf", "503.bwaves"),
                             predictors=["SKLCond"])
        assert result.predictors() == ["SKLCond"]
        assert abs(result.average_direction_reduction("SKLCond")) < 0.05
        assert abs(result.average_target_reduction("SKLCond")) < 0.05
        assert 0.9 < result.average_normalized_ipc("SKLCond") < 1.1
        assert "SKLCond" in format_figure4(result)


class TestFigure5:
    def test_smt_pairs_keep_ipc_close_to_unprotected(self):
        result = run_figure5(ExperimentScale(branch_count=3_000, warmup_branches=300, seed=13),
                             pairs=(("503.bwaves", "505.mcf"),),
                             predictors=["SKLCond"])
        assert len(result.cells) == 1
        cell = result.cells[0]
        assert 0.85 < cell.normalized_hmean_ipc < 1.1
        assert abs(cell.direction_reduction) < 0.08


class TestFigure6:
    def test_aggressive_rerandomization_degrades_gracefully(self):
        scale = ExperimentScale(branch_count=3_000, warmup_branches=300, seed=13,
                                workload_limit=1)
        result = run_figure6(scale, r_values=(0.05, 0.00002))
        assert len(result.points) == 2
        relaxed, aggressive = result.points
        assert relaxed.misprediction_threshold > aggressive.misprediction_threshold
        # Much lower thresholds mean at least as many re-randomizations and no
        # better accuracy.
        assert (aggressive.rerandomizations_per_kilo_branch
                >= relaxed.rerandomizations_per_kilo_branch)
        assert aggressive.normalized_direction_accuracy <= relaxed.normalized_direction_accuracy + 0.02
        assert "hmean ipc" in format_figure6(result)
