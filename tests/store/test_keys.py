"""Tests for canonical job/scenario fingerprints."""

import dataclasses

from repro.engine import ExperimentScale, Job, ModelSpec
from repro.engine.scenario import parse_scenario
from repro.store import (
    CACHEABLE_KINDS,
    RESULT_SCHEMA_VERSION,
    job_fingerprint,
    job_fingerprint_fields,
    scenario_fingerprint,
)


def _job(**overrides):
    base = dict(
        index=0, kind="trace", model=ModelSpec.of("ST_SKLCond", r=0.05),
        workload="505.mcf", branch_count=2_000, warmup_branches=200,
        seed=7, trace_seed=7,
    )
    base.update(overrides)
    return Job(**base)


class TestJobFingerprint:
    def test_is_a_sha256_hex_digest(self):
        fingerprint = job_fingerprint(_job())
        assert len(fingerprint) == 64
        assert set(fingerprint) <= set("0123456789abcdef")

    def test_stable_across_identical_jobs(self):
        assert job_fingerprint(_job()) == job_fingerprint(_job())

    def test_index_is_not_identity(self):
        # A grid cell's position is presentation; the same work in a
        # different grid must reuse the same stored record.
        assert job_fingerprint(_job(index=0)) == job_fingerprint(_job(index=17))

    def test_every_identity_field_changes_the_fingerprint(self):
        base = job_fingerprint(_job())
        variants = [
            _job(kind="cpu"),
            _job(model=ModelSpec.of("baseline")),
            _job(model=ModelSpec.of("ST_SKLCond", r=0.005)),
            _job(model=ModelSpec.of("ST_SKLCond", label="renamed", r=0.05)),
            _job(workload="519.lbm"),
            _job(branch_count=4_000),
            _job(warmup_branches=100),
            _job(seed=8),
            _job(trace_seed=8),
            _job(params=(("attempts", 10),)),
        ]
        fingerprints = [job_fingerprint(variant) for variant in variants]
        assert base not in fingerprints
        assert len(set(fingerprints)) == len(fingerprints)

    def test_smt_pair_workload_fingerprints(self):
        pair = _job(kind="smt", workload=("505.mcf", "519.lbm"))
        swapped = _job(kind="smt", workload=("519.lbm", "505.mcf"))
        assert job_fingerprint(pair) != job_fingerprint(swapped)

    def test_fields_embed_the_result_schema_version(self):
        fields = job_fingerprint_fields(_job())
        assert fields["result_schema"] == RESULT_SCHEMA_VERSION
        assert fields["model"]["label"] == "ST_SKLCond[r=0.05]"

    def test_cacheable_kinds_exclude_tables(self):
        assert "table" not in CACHEABLE_KINDS
        assert {"trace", "cpu", "smt", "attack", "hashgen"} <= CACHEABLE_KINDS


def _scenario(**overrides):
    data = {
        "schema": "repro.scenario/v1",
        "name": "fingerprint-test",
        "kind": "trace",
        "models": ["baseline", "ST_SKLCond"],
        "workloads": ["505.mcf"],
        "scale": {"branch_count": 1000, "warmup_branches": 100, "seed": 7},
        "baseline": "baseline",
    }
    data.update(overrides)
    return parse_scenario(data)


class TestScenarioFingerprint:
    def test_stable_for_equal_scenarios(self):
        assert scenario_fingerprint(_scenario()) == scenario_fingerprint(_scenario())

    def test_sensitive_to_payload_shaping_fields(self):
        base = scenario_fingerprint(_scenario())
        assert scenario_fingerprint(_scenario(name="other")) != base
        assert scenario_fingerprint(_scenario(metrics=["oae_accuracy"])) != base
        assert scenario_fingerprint(_scenario(baseline=None)) != base
        assert scenario_fingerprint(
            _scenario(scale={"branch_count": 999, "warmup_branches": 100,
                             "seed": 7})) != base

    def test_insensitive_to_description(self):
        # The description never reaches the serialized envelope.
        scenario = _scenario()
        described = dataclasses.replace(scenario, description="какой-то текст")
        assert scenario_fingerprint(scenario) == scenario_fingerprint(described)
