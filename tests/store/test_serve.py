"""Tests for the ``repro serve`` HTTP front-end: async job submission,
synchronous ``?wait=1`` POSTs, cached envelope GETs, ETag/304 revalidation,
fault-injected degradation, and JSON error mapping."""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.engine.scenario import parse_scenario
from repro.faults import FaultInjector, FaultyStore, parse_fault_spec
from repro.store import MemoryStore, scenario_fingerprint
from repro.store.serve import (
    MAX_BODY_BYTES,
    SERVE_SCHEMA,
    ExperimentService,
    envelope_bytes,
    envelope_etag,
    make_server,
)

SCENARIO = {
    "schema": "repro.scenario/v1",
    "name": "serve-test",
    "kind": "trace",
    "models": ["baseline"],
    "workloads": ["505.mcf"],
    "scale": {"branch_count": 600, "warmup_branches": 60, "seed": 7},
}


def _scenario(name, seed, **overrides):
    data = dict(SCENARIO, name=name)
    data["scale"] = dict(SCENARIO["scale"], seed=seed)
    data.update(overrides)
    return data


def _serve(store=None, **kwargs):
    # Not `store or MemoryStore()`: an empty MemoryStore is falsy (__len__).
    instance = make_server(port=0,
                           store=store if store is not None else MemoryStore(),
                           **kwargs)
    threading.Thread(target=instance.serve_forever, daemon=True).start()
    host, port = instance.server_address[:2]
    return instance, f"http://{host}:{port}"


def _shutdown(instance):
    instance.shutdown()
    instance.server_close()
    instance.service.close()


@pytest.fixture(scope="module")
def server():
    instance, _ = _serve()
    yield instance
    _shutdown(instance)


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _request(base_url, method, path, body=None, headers=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base_url + path, data=data, method=method,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def _poll_terminal(base_url, fingerprint, timeout=30.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, _, body = _request(base_url, "GET", f"/v1/jobs/{fingerprint}")
        payload = json.loads(body)
        if payload.get("state") in ("done", "failed", "timeout", "cancelled"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {fingerprint} never reached a terminal state")


class TestAsyncLifecycle:
    def test_post_is_202_with_job_envelope(self, base_url):
        status, headers, body = _request(
            base_url, "POST", "/v1/experiments", _scenario("async-basic", 100))
        assert status == 202
        job = json.loads(body)
        fingerprint = job["fingerprint"]
        assert headers["Location"] == f"/v1/jobs/{fingerprint}"
        assert headers["X-Repro-Job-State"] == job["state"]
        assert job["schema"] == "repro.job/v1"
        assert job["state"] in ("queued", "running")
        assert job["links"]["result"] == f"/v1/experiments/{fingerprint}"

        final = _poll_terminal(base_url, fingerprint)
        assert final["state"] == "done"
        assert final["progress"] == {"done": 1, "total": 1}

        status, headers, body = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}")
        assert status == 200
        assert json.loads(body)["result"]["records"]

    def test_second_post_of_done_scenario_is_a_200_hit(self, base_url):
        scenario = _scenario("async-hit", 101)
        _, _, body = _request(base_url, "POST", "/v1/experiments", scenario)
        _poll_terminal(base_url, json.loads(body)["fingerprint"])
        status, headers, _ = _request(
            base_url, "POST", "/v1/experiments", scenario)
        assert status == 200
        assert headers["X-Repro-Cache"] == "hit"

    def test_concurrent_posts_single_flight_on_one_fingerprint(self, base_url):
        scenario = _scenario("async-dedup", 102)
        results = []

        def post():
            results.append(_request(
                base_url, "POST", "/v1/experiments", scenario))

        threads = [threading.Thread(target=post) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        fingerprints = set()
        for status, headers, body in results:
            assert status in (200, 202)
            payload = json.loads(body)
            fingerprints.add(payload.get("fingerprint")
                             or headers.get("X-Repro-Fingerprint"))
        assert len(fingerprints) == 1
        final = _poll_terminal(base_url, fingerprints.pop())
        assert final["state"] == "done" and final["attempts"] == 1

    def test_sse_events_stream_to_terminal(self, base_url):
        _, _, body = _request(base_url, "POST", "/v1/experiments",
                              _scenario("async-events", 103))
        fingerprint = json.loads(body)["fingerprint"]
        events = []
        with urllib.request.urlopen(
                f"{base_url}/v1/jobs/{fingerprint}/events", timeout=30) as resp:
            assert resp.headers["Content-Type"] == "text/event-stream"
            for line in resp:
                line = line.strip()
                if line.startswith(b"data: "):
                    events.append(json.loads(line[len(b"data: "):]))
        assert events, "stream produced no events"
        assert events[-1]["state"] == "done"
        assert events[-1]["progress"]["done"] == events[-1]["progress"]["total"]

    def test_events_for_unknown_job_is_404_json(self, base_url):
        status, _, body = _request(
            base_url, "GET", "/v1/jobs/" + "0" * 64 + "/events")
        assert status == 404
        assert "error" in json.loads(body)


class TestSyncWait:
    def test_wait_post_matches_old_synchronous_contract(self, base_url):
        scenario = _scenario("sync-contract", 110)
        status, headers, body = _request(
            base_url, "POST", "/v1/experiments?wait=1", scenario)
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"
        fingerprint = headers["X-Repro-Fingerprint"]
        assert headers["Location"] == f"/v1/experiments/{fingerprint}"
        etag = headers["ETag"]
        envelope = json.loads(body)
        assert envelope["schema"] == "repro.scenario/v1"
        assert envelope["result"]["records"]

        # Second POST: envelope-level cache hit, byte-identical body.
        status, headers2, body2 = _request(
            base_url, "POST", "/v1/experiments?wait=1", scenario)
        assert status == 200
        assert headers2["X-Repro-Cache"] == "hit"
        assert body2 == body and headers2["ETag"] == etag

        # GET by fingerprint: same bytes, same ETag; conditional GET → 304.
        status, headers3, body3 = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}")
        assert status == 200 and body3 == body and headers3["ETag"] == etag
        status, headers4, body4 = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}",
            headers={"If-None-Match": etag})
        assert status == 304 and body4 == b""
        assert headers4["ETag"] == etag

        # A stale ETag still gets the full body; W/-weakened revalidates.
        status, _, body5 = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}",
            headers={"If-None-Match": '"deadbeef"'})
        assert status == 200 and body5 == body
        status, _, body6 = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}",
            headers={"If-None-Match": f"W/{etag}"})
        assert status == 304 and body6 == b""

    def test_wait_with_short_timeout_returns_202_job(self, base_url):
        status, _, body = _request(
            base_url, "POST", "/v1/experiments?wait=1&timeout=0",
            _scenario("sync-timeout", 111))
        payload = json.loads(body)
        # timeout=0 gives the job no time at all: either it was already done
        # (fast machine) or the client gets the live job envelope back.
        assert status in (200, 202)
        if status == 202:
            assert payload["state"] in ("queued", "running")

    def test_bad_wait_timeout_is_400(self, base_url):
        status, _, body = _request(
            base_url, "POST", "/v1/experiments?wait=1&timeout=soon",
            _scenario("sync-badtimeout", 112))
        assert status == 400
        assert "timeout" in json.loads(body)["error"]

    def test_post_never_returns_304(self, base_url):
        scenario = _scenario("sync-no304", 113)
        status, headers, _ = _request(
            base_url, "POST", "/v1/experiments?wait=1", scenario)
        etag = headers["ETag"]
        status, headers, body = _request(
            base_url, "POST", "/v1/experiments?wait=1", scenario,
            headers={"If-None-Match": etag})
        # RFC 9110: 304 is defined for conditional GET/HEAD only.
        assert status == 200
        assert body and headers["X-Repro-Fingerprint"]


class TestEndpoints:
    def test_info_and_health(self, base_url):
        status, _, body = _request(base_url, "GET", "/")
        info = json.loads(body)
        assert status == 200
        assert info["schema"] == SERVE_SCHEMA == "repro.serve/v3"
        assert "POST /v1/experiments" in info["endpoints"]
        assert "DELETE /v1/jobs/<fingerprint>" in info["endpoints"]
        assert "GET /v1/metrics" in info["endpoints"]
        assert "GET /v1/jobs/<fingerprint>/trace" in info["endpoints"]
        assert info["config"]["queue_depth"] >= 1
        status, _, body = _request(base_url, "GET", "/healthz")
        health = json.loads(body)
        assert status == 200 and health["status"] == "ok"
        assert health["workers"]["alive"] >= 1
        assert health["queue"]["capacity"] >= 1
        # v3: store occupancy rides along in the liveness payload.
        assert health["store"]["entries"] >= 0
        assert health["store"]["bytes"] >= 0

    def test_unknown_fingerprint_is_404(self, base_url):
        status, _, body = _request(
            base_url, "GET", "/v1/experiments/" + "0" * 64)
        assert status == 404
        assert "no cached envelope" in json.loads(body)["error"]

    def test_unknown_job_is_404(self, base_url):
        status, _, body = _request(base_url, "GET", "/v1/jobs/" + "1" * 64)
        assert status == 404
        assert "unknown job" in json.loads(body)["error"]

    def test_invalid_fingerprint_is_400(self, base_url):
        for path in ("/v1/experiments/not-hex!", "/v1/jobs/not-hex!",
                     "/v1/jobs/not-hex!/events"):
            status, _, body = _request(base_url, "GET", path)
            assert status == 400
            assert "error" in json.loads(body)

    def test_invalid_scenario_is_400(self, base_url):
        status, _, body = _request(base_url, "POST", "/v1/experiments",
                                   {"kind": "nope"})
        assert status == 400
        assert "invalid scenario" in json.loads(body)["error"]

    def test_non_json_body_is_400(self, base_url):
        request = urllib.request.Request(
            base_url + "/v1/experiments", data=b"{broken", method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_oversized_body_is_413(self, server):
        # The declared body is never read: the server must refuse up front
        # rather than allocate MAX_BODY_BYTES+ of attacker-chosen bytes.
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/experiments")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert "exceeds" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_unknown_paths_are_404(self, base_url):
        assert _request(base_url, "GET", "/nope")[0] == 404
        assert _request(base_url, "POST", "/v1/nope")[0] == 404
        assert _request(base_url, "DELETE", "/v1/nope")[0] == 404

    def test_store_failure_on_get_is_a_500(self):
        # A read-only mount / disk-full store must map to a JSON 500 on GET
        # paths too (do_POST already had the catch-all), not a dropped
        # connection with no status line.
        class BrokenStore(MemoryStore):
            def get(self, namespace, fingerprint):
                raise RuntimeError("store root unreadable")

        instance, url = _serve(store=BrokenStore())
        try:
            status, _, body = _request(
                url, "GET", "/v1/experiments/" + "0" * 64)
            assert status == 500
            assert "internal error" in json.loads(body)["error"]
        finally:
            _shutdown(instance)

    def test_store_stats_endpoint(self, base_url):
        status, _, body = _request(base_url, "GET", "/v1/store/stats")
        stats = json.loads(body)
        assert status == 200
        assert stats["backend"] == "memory"
        assert stats["entries"] >= 1

    def test_every_http_error_carries_a_json_body(self, base_url):
        # The ISSUE's contract: no error path may answer with a bare body.
        cases = [
            ("GET", "/nope", None),                            # 404 route
            ("GET", "/v1/experiments/zz!", None),              # 400 key
            ("GET", "/v1/experiments/" + "2" * 64, None),      # 404 envelope
            ("GET", "/v1/jobs/" + "2" * 64, None),             # 404 job
            ("DELETE", "/v1/jobs/" + "2" * 64, None),          # 404 cancel
            ("POST", "/v1/experiments", {"kind": "nope"}),     # 400 scenario
        ]
        for method, path, body in cases:
            status, headers, raw = _request(base_url, method, path, body)
            assert status >= 400, (method, path)
            assert headers["Content-Type"] == "application/json"
            payload = json.loads(raw)
            assert payload["schema"] == SERVE_SCHEMA
            assert payload["error"], (method, path)


class TestObservability:
    def test_metrics_endpoint_exposes_all_tiers(self, base_url):
        # Drive one scenario end to end so every tier has something to
        # report, then scrape.
        _request(base_url, "POST", "/v1/experiments?wait=1",
                 _scenario("obs-metrics", 160))
        status, headers, body = _request(base_url, "GET", "/v1/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert "version=0.0.4" in headers["Content-Type"]
        text = body.decode("utf-8")
        # One registry, all tiers: store, job tier, engine, HTTP, plus the
        # scrape-time gauges.
        for series in ("repro_store_writes_total", "repro_store_entries",
                       "repro_store_op_seconds_bucket",
                       "repro_jobs_submitted_total", "repro_jobs_queue_depth",
                       "repro_engine_jobs_executed_total",
                       "repro_http_requests_total"):
            assert series in text, f"{series} missing from /v1/metrics"
        assert "# HELP repro_jobs_submitted_total" in text
        assert "# TYPE repro_store_op_seconds histogram" in text
        assert 'le="+Inf"' in text

    def test_trace_endpoint_returns_span_tree(self, base_url):
        status, _, body = _request(base_url, "POST", "/v1/experiments?wait=1",
                                   _scenario("obs-trace", 161))
        assert status == 200
        fingerprint = scenario_fingerprint(
            parse_scenario(_scenario("obs-trace", 161)))
        status, _, body = _request(
            base_url, "GET", f"/v1/jobs/{fingerprint}/trace")
        assert status == 200
        trace = json.loads(body)
        assert trace["schema"] == "repro.obstrace/v1"
        assert trace["fingerprint"] == fingerprint
        root = trace["root"]
        assert root["name"] == "scenario"
        phases = [child["name"] for child in root["children"]]
        assert phases == ["partition", "dispatch", "execute", "merge"]
        merge = root["children"][-1]
        jobs = [child for child in merge["children"]
                if child["name"] == "job"]
        assert len(jobs) == 1
        assert jobs[0]["attrs"]["model"] == "baseline"
        # Every span carries its deterministic identity.
        assert all(len(node["id"]) == 16
                   for node in [root] + root["children"])

    def test_trace_for_unknown_job_is_404(self, base_url):
        status, _, body = _request(
            base_url, "GET", "/v1/jobs/" + "3" * 64 + "/trace")
        assert status == 404
        assert "no trace" in json.loads(body)["error"]

    def test_sse_client_disconnect_releases_handler(self):
        # A client that walks away mid-stream must not park the handler
        # thread until the job ends: the heartbeat write hits the dead
        # socket within ~1s and the handler exits.
        import http.client

        injector = FaultInjector(parse_fault_spec("hang=wedge,hang_seconds=60"))
        instance, url = _serve(workers=1, job_timeout=60, injector=injector)
        try:
            _, _, body = _request(url, "POST", "/v1/experiments",
                                  _scenario("wedge-sse", 162))
            fingerprint = json.loads(body)["fingerprint"]
            baseline = threading.active_count()
            host, port = instance.server_address[:2]
            connection = http.client.HTTPConnection(host, port, timeout=30)
            connection.request("GET", f"/v1/jobs/{fingerprint}/events")
            response = connection.getresponse()
            assert response.status == 200
            assert response.readline()  # the stream is live
            # Hang up mid-stream; the job itself stays wedged for 60s.
            connection.close()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if threading.active_count() <= baseline:
                    break
                time.sleep(0.05)
            assert threading.active_count() <= baseline, \
                "SSE handler thread leaked after client disconnect"
            # The server is still fully alive behind the wedged job.
            status, _, body = _request(url, "GET", "/healthz")
            assert status == 200
            assert json.loads(body)["workers"]["alive"] >= 1
        finally:
            _shutdown(instance)


class TestSupervision:
    def test_queue_full_is_429_with_retry_after(self):
        injector = FaultInjector(parse_fault_spec("hang=wedge,hang_seconds=60"))
        instance, url = _serve(workers=1, queue_depth=1, job_timeout=60,
                               injector=injector)
        try:
            # Wedge the only worker, fill the depth-1 queue, then overflow.
            _request(url, "POST", "/v1/experiments", _scenario("wedge-a", 120))
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                _, _, body = _request(url, "GET", "/healthz")
                if json.loads(body)["workers"]["busy"] >= 1:
                    break
                time.sleep(0.02)
            _request(url, "POST", "/v1/experiments", _scenario("queued-b", 121))
            status, headers, body = _request(
                url, "POST", "/v1/experiments", _scenario("rejected-c", 122))
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "full" in json.loads(body)["error"]
        finally:
            _shutdown(instance)

    def test_hung_job_times_out_without_blocking_others(self):
        injector = FaultInjector(parse_fault_spec("hang=wedge,hang_seconds=60"))
        instance, url = _serve(workers=2, job_timeout=0.5, injector=injector)
        instance.service.manager.tick = 0.02
        try:
            _, _, body = _request(url, "POST", "/v1/experiments",
                                  _scenario("wedge-hung", 130))
            hung_fp = json.loads(body)["fingerprint"]
            start = time.monotonic()
            _, _, body = _request(url, "POST", "/v1/experiments",
                                  _scenario("free-lane", 131))
            other_fp = json.loads(body)["fingerprint"]
            other = _poll_terminal(url, other_fp, timeout=20)
            elapsed = time.monotonic() - start
            assert other["state"] == "done"
            hung = _poll_terminal(url, hung_fp, timeout=20)
            assert hung["state"] == "timeout"
            assert "deadline" in hung["error"]
            # The free job finished while the wedged one was still hanging
            # (or at worst just after its 0.5s deadline) — no global lock.
            assert elapsed < 5.0
            # Supervision replaced/reclaimed workers: the pool still serves.
            follow_up = _poll_terminal(
                url, json.loads(_request(
                    url, "POST", "/v1/experiments",
                    _scenario("after-timeout", 132))[2])["fingerprint"],
                timeout=20)
            assert follow_up["state"] == "done"
        finally:
            _shutdown(instance)

    def test_wait_post_on_hung_job_is_504_json(self):
        injector = FaultInjector(parse_fault_spec("hang=wedge,hang_seconds=60"))
        instance, url = _serve(workers=1, job_timeout=0.3, injector=injector)
        instance.service.manager.tick = 0.02
        try:
            status, _, body = _request(
                url, "POST", "/v1/experiments?wait=1",
                _scenario("wedge-wait", 133))
            assert status == 504
            payload = json.loads(body)
            assert payload["schema"] == SERVE_SCHEMA
            assert "deadline" in payload["error"]
        finally:
            _shutdown(instance)

    def test_cancel_queued_job_and_cancel_races(self):
        injector = FaultInjector(parse_fault_spec("hang=wedge,hang_seconds=60"))
        instance, url = _serve(workers=1, queue_depth=8, job_timeout=60,
                               injector=injector)
        try:
            _request(url, "POST", "/v1/experiments", _scenario("wedge-d", 140))
            _, _, body = _request(url, "POST", "/v1/experiments",
                                  _scenario("victim", 141))
            victim = json.loads(body)["fingerprint"]
            status, _, body = _request(url, "DELETE", f"/v1/jobs/{victim}")
            assert status == 200
            assert json.loads(body)["state"] == "cancelled"
            # Cancelling again races a terminal job: 409 with a JSON body.
            status, _, body = _request(url, "DELETE", f"/v1/jobs/{victim}")
            assert status == 409
            assert "cancelled" in json.loads(body)["error"]
            # A cancelled job never runs.
            payload = json.loads(
                _request(url, "GET", f"/v1/jobs/{victim}")[2])
            assert payload["state"] == "cancelled" and payload["attempts"] == 0
        finally:
            _shutdown(instance)

    def test_cancel_running_job_is_409(self):
        injector = FaultInjector(parse_fault_spec("hang=wedge,hang_seconds=60"))
        instance, url = _serve(workers=1, job_timeout=60, injector=injector)
        try:
            _, _, body = _request(url, "POST", "/v1/experiments",
                                  _scenario("wedge-running", 142))
            fingerprint = json.loads(body)["fingerprint"]
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                payload = json.loads(
                    _request(url, "GET", f"/v1/jobs/{fingerprint}")[2])
                if payload["state"] == "running":
                    break
                time.sleep(0.02)
            status, _, body = _request(
                url, "DELETE", f"/v1/jobs/{fingerprint}")
            assert status == 409
            assert "running" in json.loads(body)["error"]
        finally:
            _shutdown(instance)

    def test_healthz_degrades_to_503_when_pool_is_dead(self):
        instance, url = _serve(workers=1)
        service = instance.service
        try:
            # Simulate a dead pool: retire every worker handle.
            with service.manager._lock:
                for handle in service.manager._handles:
                    handle.retired = True
            status, _, body = _request(url, "GET", "/healthz")
            payload = json.loads(body)
            assert status == 503
            assert payload["status"] == "degraded"
            assert payload["workers"]["alive"] == 0
        finally:
            _shutdown(instance)


class TestUnderFaults:
    def test_faulty_store_degrades_to_2xx_and_identical_bytes(self):
        # Nonzero error/latency/corruption on every store round-trip: the
        # serving tier must still answer 2xx with an envelope byte-identical
        # to a fault-free run (the engine is deterministic; faults only cost
        # recomputes).
        scenario = _scenario("chaos", 150)
        clean_instance, clean_url = _serve()
        try:
            _, _, clean_body = _request(
                clean_url, "POST", "/v1/experiments?wait=1", scenario)
        finally:
            _shutdown(clean_instance)

        plan = parse_fault_spec(
            "error=0.25,latency=0.25,latency_seconds=0.002,corrupt=0.25,seed=9")
        store = FaultyStore(MemoryStore(), plan)
        instance, url = _serve(store=store, injector=store.injector,
                               job_timeout=60)
        try:
            for attempt in range(10):
                status, _, body = _request(
                    url, "POST", "/v1/experiments?wait=1", scenario)
                assert status == 200, body
                assert body == clean_body
            counters = store.injector.counters()
            assert counters["injected_errors"] + counters["injected_latency"] \
                + counters["injected_corruption"] > 0, \
                "fault plan injected nothing; the test proves nothing"
        finally:
            _shutdown(instance)

    def test_corrupt_envelope_read_recomputes(self):
        # Deterministic corruption of exactly the envelope read: the POST
        # must treat it as a miss and recompute, not serve garbage.
        scenario = _scenario("corrupt-read", 151)
        store = MemoryStore()
        instance, url = _serve(store=store)
        try:
            status, _, body = _request(
                url, "POST", "/v1/experiments?wait=1", scenario)
            assert status == 200
            fingerprint = scenario_fingerprint(parse_scenario(scenario))
            store.put("envelope", fingerprint,
                      {"schema": "repro.fault/corrupt", "injected": True})
            status, headers, body2 = _request(
                url, "POST", "/v1/experiments?wait=1", scenario)
            assert status == 200
            assert body2 == body
        finally:
            _shutdown(instance)


class TestService:
    def test_submit_reuses_job_records_across_scenarios(self):
        # Two scenarios sharing cells: the second runs only its new cells.
        service = ExperimentService(store=MemoryStore(), tick=0.02)
        try:
            scenario, fingerprint = service.prepare(SCENARIO)
            service.submit_async(scenario, fingerprint)
            assert service.wait(fingerprint, timeout=30)["state"] == "done"
            wider = dict(SCENARIO, name="serve-test-wider",
                         models=["baseline", "ST_SKLCond"])
            scenario2, fingerprint2 = service.prepare(wider)
            service.submit_async(scenario2, fingerprint2)
            assert service.wait(fingerprint2, timeout=30)["state"] == "done"
            envelope = service.cached_envelope(fingerprint2)
            assert len(envelope["result"]["records"]) == 2
            # The baseline cell was merged from the job-record cache.
            assert service.store.counters.hits >= 1
        finally:
            service.close()

    def test_fingerprint_matches_keys_module(self):
        service = ExperimentService(store=MemoryStore())
        try:
            _, fingerprint = service.prepare(SCENARIO)
            assert fingerprint == scenario_fingerprint(parse_scenario(SCENARIO))
        finally:
            service.close()

    def test_etag_is_stable_for_equal_envelopes(self):
        envelope = {"schema": "repro.scenario/v1", "spec": "scenario",
                    "result": {"records": []}}
        assert envelope_etag(envelope_bytes(envelope)) == \
            envelope_etag(envelope_bytes(json.loads(json.dumps(envelope))))

    def test_envelope_write_failure_still_serves_the_result(self):
        # Disk-full on the envelope put must degrade to serving the job
        # manager's in-memory copy, not discard a computed scenario.
        class WriteFailingStore(MemoryStore):
            def put(self, namespace, fingerprint, payload):
                if namespace == "envelope":
                    raise OSError("disk full")
                super().put(namespace, fingerprint, payload)

        service = ExperimentService(store=WriteFailingStore(), tick=0.02)
        try:
            scenario, fingerprint = service.prepare(
                dict(SCENARIO, name="degraded-write"))
            service.submit_async(scenario, fingerprint)
            assert service.wait(fingerprint, timeout=30)["state"] == "done"
            envelope = service.cached_envelope(fingerprint)
            assert envelope is not None and envelope["result"]["records"]
            assert service.store.get("envelope", fingerprint) is None
        finally:
            service.close()

    def test_invalid_workers_fail_at_construction(self):
        with pytest.raises(ValueError, match="workers"):
            ExperimentService(store=MemoryStore(), workers=0)


class TestKeepAlive:
    def test_post_error_paths_drain_the_body(self, base_url, server):
        # With HTTP/1.1 keep-alive, an error reply that leaves the POST body
        # unread would desync the connection: the next request on it would be
        # parsed starting at the stale body bytes.
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            body = json.dumps({"x": 1})
            connection.request("POST", "/nope", body=body,
                               headers={"Content-Type": "application/json"})
            assert connection.getresponse().read() is not None
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()
