"""Tests for the ``repro serve`` HTTP front-end: scenario POSTs, cached
envelope GETs, ETag/304 revalidation, and error mapping."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.store import MemoryStore, scenario_fingerprint
from repro.engine.scenario import parse_scenario
from repro.store.serve import (
    MAX_BODY_BYTES,
    ExperimentService,
    envelope_bytes,
    envelope_etag,
    make_server,
)

SCENARIO = {
    "schema": "repro.scenario/v1",
    "name": "serve-test",
    "kind": "trace",
    "models": ["baseline"],
    "workloads": ["505.mcf"],
    "scale": {"branch_count": 600, "warmup_branches": 60, "seed": 7},
}


@pytest.fixture(scope="module")
def server():
    instance = make_server(port=0, store=MemoryStore())
    thread = threading.Thread(target=instance.serve_forever, daemon=True)
    thread.start()
    yield instance
    instance.shutdown()
    instance.server_close()


@pytest.fixture(scope="module")
def base_url(server):
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


def _request(base_url, method, path, body=None, headers=None):
    data = json.dumps(body).encode("utf-8") if body is not None else None
    request = urllib.request.Request(base_url + path, data=data, method=method,
                                     headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestEndpoints:
    def test_info_and_health(self, base_url):
        status, _, body = _request(base_url, "GET", "/")
        info = json.loads(body)
        assert status == 200
        assert info["schema"] == "repro.serve/v1"
        assert "POST /v1/experiments" in info["endpoints"]
        status, _, body = _request(base_url, "GET", "/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"

    def test_post_then_get_then_304(self, base_url):
        status, headers, body = _request(
            base_url, "POST", "/v1/experiments", SCENARIO)
        assert status == 200
        assert headers["X-Repro-Cache"] == "miss"
        fingerprint = headers["X-Repro-Fingerprint"]
        assert headers["Location"] == f"/v1/experiments/{fingerprint}"
        etag = headers["ETag"]
        envelope = json.loads(body)
        assert envelope["schema"] == "repro.scenario/v1"
        assert envelope["result"]["records"]

        # Second POST: envelope-level cache hit, byte-identical body.
        status, headers2, body2 = _request(
            base_url, "POST", "/v1/experiments", SCENARIO)
        assert status == 200
        assert headers2["X-Repro-Cache"] == "hit"
        assert body2 == body and headers2["ETag"] == etag

        # GET by fingerprint: same bytes, same ETag.
        status, headers3, body3 = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}")
        assert status == 200 and body3 == body and headers3["ETag"] == etag

        # Conditional GET revalidates to 304 with an empty body.
        status, headers4, body4 = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}",
            headers={"If-None-Match": etag})
        assert status == 304 and body4 == b""
        assert headers4["ETag"] == etag

        # A stale ETag still gets the full body.
        status, _, body5 = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}",
            headers={"If-None-Match": '"deadbeef"'})
        assert status == 200 and body5 == body

        # RFC 9110: If-None-Match compares weakly — a proxy-weakened
        # validator (W/ prefix) must still revalidate to 304.
        status, _, body6 = _request(
            base_url, "GET", f"/v1/experiments/{fingerprint}",
            headers={"If-None-Match": f"W/{etag}"})
        assert status == 304 and body6 == b""

    def test_unknown_fingerprint_is_404(self, base_url):
        status, _, body = _request(
            base_url, "GET", "/v1/experiments/" + "0" * 64)
        assert status == 404
        assert "no cached envelope" in json.loads(body)["error"]

    def test_invalid_fingerprint_is_400(self, base_url):
        status, _, _ = _request(base_url, "GET", "/v1/experiments/not-hex!")
        assert status == 400

    def test_invalid_scenario_is_400(self, base_url):
        status, _, body = _request(base_url, "POST", "/v1/experiments",
                                   {"kind": "nope"})
        assert status == 400
        assert "invalid scenario" in json.loads(body)["error"]

    def test_non_json_body_is_400(self, base_url):
        request = urllib.request.Request(
            base_url + "/v1/experiments", data=b"{broken", method="POST")
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=30)
        assert info.value.code == 400

    def test_oversized_body_is_413(self, server):
        # The declared body is never read: the server must refuse up front
        # rather than allocate MAX_BODY_BYTES+ of attacker-chosen bytes.
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            connection.putrequest("POST", "/v1/experiments")
            connection.putheader("Content-Type", "application/json")
            connection.putheader("Content-Length", str(MAX_BODY_BYTES + 1))
            connection.endheaders()
            response = connection.getresponse()
            assert response.status == 413
            assert "exceeds" in json.loads(response.read())["error"]
        finally:
            connection.close()

    def test_unknown_paths_are_404(self, base_url):
        assert _request(base_url, "GET", "/nope")[0] == 404
        assert _request(base_url, "POST", "/v1/nope")[0] == 404

    def test_store_failure_on_get_is_a_500(self):
        # A read-only mount / disk-full store must map to a JSON 500 on GET
        # paths too (do_POST already had the catch-all), not a dropped
        # connection with no status line.
        class BrokenStore(MemoryStore):
            def get(self, namespace, fingerprint):
                raise OSError("store root unreadable")

        instance = make_server(port=0, store=BrokenStore())
        thread = threading.Thread(target=instance.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = instance.server_address[:2]
            status, _, body = _request(
                f"http://{host}:{port}", "GET", "/v1/experiments/" + "0" * 64)
            assert status == 500
            assert "internal error" in json.loads(body)["error"]
        finally:
            instance.shutdown()
            instance.server_close()

    def test_store_stats_endpoint(self, base_url):
        status, _, body = _request(base_url, "GET", "/v1/store/stats")
        stats = json.loads(body)
        assert status == 200
        assert stats["backend"] == "memory"
        assert stats["entries"] >= 1


class TestService:
    def test_submit_reuses_job_records_across_scenarios(self):
        # Two scenarios sharing cells: the second runs only its new cells.
        service = ExperimentService(store=MemoryStore())
        _, _, hit = service.submit(SCENARIO)
        assert not hit
        wider = dict(SCENARIO, name="serve-test-wider",
                     models=["baseline", "ST_SKLCond"])
        fingerprint, envelope, hit = service.submit(wider)
        assert not hit  # new envelope...
        assert len(envelope["result"]["records"]) == 2
        # ...but the baseline cell was merged from the job-record cache.
        assert service.store.counters.hits >= 1
        assert service.runs == 2

    def test_cold_submit_counts_one_envelope_miss(self):
        # The pre-lock fast path probes with contains(): a cold scenario is
        # one envelope miss plus one per missing job, not a pre-lock miss
        # plus an in-lock miss for the same envelope.
        service = ExperimentService(store=MemoryStore())
        service.submit(SCENARIO)  # one job (1 model x 1 workload)
        assert service.store.counters.misses == 2
        # Nothing was served from cache: the post-put normalization must not
        # count a hit for an envelope this very request computed.
        assert service.store.counters.hits == 0

    def test_fingerprint_matches_keys_module(self):
        service = ExperimentService(store=MemoryStore())
        fingerprint, _, _ = service.submit(SCENARIO)
        assert fingerprint == scenario_fingerprint(parse_scenario(SCENARIO))

    def test_etag_is_stable_for_equal_envelopes(self):
        envelope = {"schema": "repro.scenario/v1", "spec": "scenario",
                    "result": {"records": []}}
        assert envelope_etag(envelope_bytes(envelope)) == \
            envelope_etag(envelope_bytes(json.loads(json.dumps(envelope))))

    def test_envelope_write_failure_still_serves_the_result(self, monkeypatch):
        # Disk-full on the envelope put must degrade to an uncached response,
        # not discard a successfully computed scenario as a 500.
        service = ExperimentService(store=MemoryStore())
        monkeypatch.setattr(
            service.store, "put",
            lambda *args, **kwargs: (_ for _ in ()).throw(OSError("disk full")))
        fingerprint, envelope, hit = service.submit(SCENARIO)
        assert not hit and envelope["result"]["records"]
        assert service.store.get("envelope", fingerprint) is None

    def test_invalid_workers_fail_at_construction(self):
        with pytest.raises(ValueError, match="workers"):
            ExperimentService(store=MemoryStore(), workers=0)

    def test_failed_execution_drops_the_pooled_runner(self, monkeypatch):
        # A worker crash mid-run leaves the pooled runner (and its process
        # pool) suspect; keeping it would 500 every later POST.
        service = ExperimentService(store=MemoryStore())
        service.submit(SCENARIO)
        runner = service._runner
        monkeypatch.setattr(
            runner, "run_jobs",
            lambda jobs: (_ for _ in ()).throw(RuntimeError("pool died")))
        broken = dict(SCENARIO, name="serve-test-broken")
        with pytest.raises(RuntimeError):
            service.submit(broken)
        assert service._runner is None
        fingerprint, envelope, hit = service.submit(broken)
        assert not hit and envelope["result"]["records"]

    def test_service_reuses_one_runner_across_submits(self):
        service = ExperimentService(store=MemoryStore())
        service.submit(SCENARIO)
        runner = service._runner
        assert runner is not None
        service.submit(dict(SCENARIO, name="again"))
        assert service._runner is runner
        service.close()
        assert service._runner is None


class TestKeepAlive:
    def test_post_error_paths_drain_the_body(self, base_url, server):
        # With HTTP/1.1 keep-alive, an error reply that leaves the POST body
        # unread would desync the connection: the next request on it would be
        # parsed starting at the stale body bytes.
        import http.client

        host, port = server.server_address[:2]
        connection = http.client.HTTPConnection(host, port, timeout=30)
        try:
            body = json.dumps({"x": 1})
            connection.request("POST", "/nope", body=body,
                               headers={"Content-Type": "application/json"})
            assert connection.getresponse().read() is not None
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            assert json.loads(response.read())["status"] == "ok"
        finally:
            connection.close()

    def test_post_never_returns_304(self, base_url):
        status, headers, _ = _request(base_url, "POST", "/v1/experiments",
                                      SCENARIO)
        etag = headers["ETag"]
        status, headers, body = _request(
            base_url, "POST", "/v1/experiments", SCENARIO,
            headers={"If-None-Match": etag})
        # RFC 9110: 304 is defined for conditional GET/HEAD only.
        assert status == 200
        assert body and headers["X-Repro-Fingerprint"]
