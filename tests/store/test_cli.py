"""Tests for the store-facing CLI surface: ``--store``/``--no-store`` on run
commands, the ``repro store`` maintenance subcommands, ``--version``, and the
deterministically sorted registry listings."""

import json
import os

import pytest

from repro.cli import main
from repro.store import DiskStore, STORE_ENV

SCENARIO_PATH = "examples/scenario_quick.json"


class TestRunWithStore:
    def test_cold_then_warm_run_byte_identical_envelopes(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        cold_json = str(tmp_path / "cold.json")
        warm_json = str(tmp_path / "warm.json")
        assert main(["run", SCENARIO_PATH, "--store", store_dir,
                     "--no-progress", "--json", cold_json]) == 0
        err = capsys.readouterr().err
        assert "store: 0 hits, 4 misses, 4 writes" in err
        assert main(["run", SCENARIO_PATH, "--store", store_dir,
                     "--no-progress", "--json", warm_json]) == 0
        err = capsys.readouterr().err
        assert "store: 4 hits, 0 misses, 0 writes" in err
        with open(cold_json, "rb") as cold, open(warm_json, "rb") as warm:
            assert cold.read() == warm.read()

    def test_env_var_names_the_default_store(self, tmp_path, capsys, monkeypatch):
        store_dir = str(tmp_path / "env-store")
        monkeypatch.setenv(STORE_ENV, store_dir)
        assert main(["run", SCENARIO_PATH, "--no-progress"]) == 0
        assert "4 writes" in capsys.readouterr().err
        assert DiskStore(store_dir).stats()["entries"] == 4

    def test_no_store_overrides_the_env_var(self, tmp_path, capsys, monkeypatch):
        store_dir = str(tmp_path / "env-store")
        monkeypatch.setenv(STORE_ENV, store_dir)
        assert main(["run", SCENARIO_PATH, "--no-store", "--no-progress"]) == 0
        assert "store:" not in capsys.readouterr().err
        assert not os.path.exists(store_dir)

    def test_experiment_subcommand_accepts_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        args = ["figure3", "--scale", "fast", "--workload-limit", "1",
                "--store", store_dir]
        assert main(args) == 0
        first = capsys.readouterr()
        assert "misses" in first.err
        assert main(args) == 0
        second = capsys.readouterr()
        # Warm run: same stdout, zero executed (all hits, no writes).
        assert second.out == first.out
        assert "0 misses, 0 writes" in second.err


class TestStoreSubcommands:
    def test_stats(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        DiskStore(store_dir).put("job", "f" * 64, {"x": 1})
        assert main(["store", "stats", "--store", store_dir]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["entries"] == 1 and stats["backend"] == "disk"

    def test_gc(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        store = DiskStore(store_dir)
        for digit in "abc":
            store.put("job", digit * 64, {"pad": "x" * 40})
        assert main(["store", "gc", "--store", store_dir,
                     "--max-bytes", "1"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["evicted"] == 3 and summary["entries"] == 0

    def test_verify_clean_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        DiskStore(store_dir).put("job", "f" * 64, {"x": 1})
        assert main(["store", "verify", "--store", store_dir]) == 0
        assert "0 issue(s)" in capsys.readouterr().out

    def test_verify_fails_on_inconsistency(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        store = DiskStore(store_dir)
        store.put("job", "f" * 64, {"x": 1})
        with open(store.object_path("job", "f" * 64), "wb") as handle:
            handle.write(b"junk")
        assert main(["store", "verify", "--store", store_dir]) != 0
        captured = capsys.readouterr()
        assert "unreadable" in captured.out

    def test_missing_store_dir_is_a_cli_error(self, capsys, monkeypatch):
        monkeypatch.delenv(STORE_ENV, raising=False)
        assert main(["store", "stats"]) == 2
        assert "no store directory" in capsys.readouterr().err

    def test_nonexistent_store_dir_is_a_cli_error(self, tmp_path, capsys):
        # A typo'd path must not be auto-created and reported as a clean,
        # empty store; only run commands create their cache dir on demand.
        missing = str(tmp_path / "no-such-store")
        for subcommand in (["stats"], ["gc"], ["verify"]):
            assert main(["store", *subcommand, "--store", missing]) == 2
            assert "does not exist" in capsys.readouterr().err
            assert not os.path.exists(missing)

    def test_store_ignored_notice_for_non_grid_experiments(
            self, tmp_path, capsys):
        # bench manages its own execution (build_jobs=None): a --store there
        # silently doing nothing would read as "bench results are cached".
        store_dir = str(tmp_path / "store")
        assert main(["bench", "--quick", "--store", store_dir,
                     "--output", str(tmp_path / "bench.json")]) == 0
        err = capsys.readouterr().err
        assert "--store is ignored" in err
        assert not os.path.exists(store_dir)


class TestVersionAndListings:
    def test_version_flag(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as info:
            main(["--version"])
        assert info.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {__version__}"

    def test_list_models_is_sorted_with_vector_column(self, capsys):
        assert main(["list-models"]) == 0
        rows = [line.split() for line in capsys.readouterr().out.strip().splitlines()]
        names = [row[0] for row in rows]
        assert names == sorted(names) and len(names) == len(set(names))
        assert {row[1] for row in rows} <= {"kernel", "guarded", "fallback"}

    def test_list_workloads_is_sorted(self, capsys):
        assert main(["list-workloads"]) == 0
        names = capsys.readouterr().out.strip().splitlines()
        assert names == sorted(names) and len(names) == len(set(names))

    def test_list_workloads_category_filter_stays_sorted(self, capsys):
        assert main(["list-workloads", "--category", "application"]) == 0
        names = capsys.readouterr().out.strip().splitlines()
        assert names == sorted(names) and names
