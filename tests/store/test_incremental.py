"""Tests for incremental grid execution through the result store: warm runs
execute zero jobs, overlapping grids run only the missing half, merged frames
stay byte-identical, and bad store content degrades to a recompute."""

import json

import pytest

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    SimulationGrid,
    load_scenario,
    run_scenario,
    scenario_envelope,
)
from repro.engine.grid import Job
from repro.store import (
    DiskStore,
    JOB_NAMESPACE,
    MemoryStore,
    job_fingerprint,
)

_SCALE = ExperimentScale(branch_count=1_200, warmup_branches=100, seed=13)
_MODELS = ("baseline", "ST_SKLCond")


def _grid(workloads=("505.mcf", "519.lbm")):
    return SimulationGrid(kind="trace", models=_MODELS, workloads=workloads,
                          scale=_SCALE)


class TestIncrementalExecution:
    def test_cold_run_executes_everything_and_writes_back(self):
        store = MemoryStore()
        runner = EngineRunner(store=store)
        frame = runner.run(_grid())
        assert (runner.last_total, runner.last_cached, runner.last_executed) \
            == (4, 0, 4)
        assert store.counters.writes == 4
        assert len(frame) == 4

    def test_warm_run_executes_zero_jobs(self):
        store = MemoryStore()
        EngineRunner(store=store).run(_grid())
        runner = EngineRunner(store=store)
        frame = runner.run(_grid())
        assert (runner.last_cached, runner.last_executed) == (4, 0)
        assert frame.to_json() == EngineRunner().run(_grid()).to_json()

    def test_half_overlapping_grid_runs_only_the_missing_half(self):
        store = MemoryStore()
        EngineRunner(store=store).run(_grid(workloads=("505.mcf",)))
        runner = EngineRunner(store=store)
        frame = runner.run(_grid(workloads=("505.mcf", "519.lbm")))
        assert (runner.last_total, runner.last_cached, runner.last_executed) \
            == (4, 2, 2)
        assert frame.to_json() == EngineRunner().run(_grid()).to_json()

    def test_cached_records_report_zero_seconds(self):
        store = MemoryStore()
        EngineRunner(store=store).run(_grid())
        runner = EngineRunner(store=store)
        records = list(runner.iter_records(_grid().jobs()))
        assert all(record.seconds == 0.0 for record in records)

    def test_progress_counts_cached_jobs(self):
        store = MemoryStore()
        EngineRunner(store=store).run(_grid())
        seen = []
        runner = EngineRunner(store=store)
        runner.run_jobs(_grid().jobs(),
                        progress=lambda done, total, record: seen.append((done, total)))
        assert seen == [(1, 4), (2, 4), (3, 4), (4, 4)]

    def test_parallel_warm_and_partial_runs_match_serial(self):
        store = MemoryStore()
        EngineRunner(store=store).run(_grid(workloads=("505.mcf",)))
        with EngineRunner(workers=2, store=store) as runner:
            frame = runner.run(_grid())
            assert (runner.last_cached, runner.last_executed) == (2, 2)
            warm = runner.run(_grid())
            assert (runner.last_cached, runner.last_executed) == (4, 0)
        reference = EngineRunner().run(_grid())
        assert frame.to_json() == warm.to_json() == reference.to_json()

    def test_cumulative_instrumentation(self):
        store = MemoryStore()
        runner = EngineRunner(store=store)
        runner.run(_grid())
        runner.run(_grid())
        assert runner.total_executed == 4
        assert runner.total_cached == 4

    def test_without_store_nothing_is_cached(self):
        runner = EngineRunner()
        runner.run(_grid(workloads=("505.mcf",)))
        assert (runner.last_cached, runner.last_executed) == (0, 2)

    def test_table_jobs_bypass_the_store(self):
        store = MemoryStore()
        job = Job(index=0, kind="table", params=(("table", "thresholds"),))
        runner = EngineRunner(store=store)
        runner.run_jobs([job])
        assert runner.last_executed == 1
        assert store.counters.writes == 0


class TestStoreDegradation:
    def test_mismatched_record_recomputes(self):
        # A record that is readable but describes different work (kind/model
        # drift) must never be merged into the frame.
        store = MemoryStore()
        grid = _grid(workloads=("505.mcf",))
        fingerprint = job_fingerprint(grid.jobs()[0])
        store.put(JOB_NAMESPACE, fingerprint,
                  {"kind": "cpu", "model": "impostor", "workload": "505.mcf",
                   "metrics": {"ipc": 1.0}})
        runner = EngineRunner(store=store)
        frame = runner.run(grid)
        assert runner.last_executed == 2
        assert frame.to_json() == EngineRunner().run(grid).to_json()

    def test_malformed_record_recomputes(self):
        store = MemoryStore()
        grid = _grid(workloads=("505.mcf",))
        fingerprint = job_fingerprint(grid.jobs()[0])
        store.put(JOB_NAMESPACE, fingerprint, {"not": "a record"})
        runner = EngineRunner(store=store)
        frame = runner.run(grid)
        assert runner.last_executed == 2
        assert frame.to_json() == EngineRunner().run(grid).to_json()

    def test_truncated_disk_record_recomputes(self, tmp_path):
        store = DiskStore(str(tmp_path / "store"))
        grid = _grid(workloads=("505.mcf",))
        EngineRunner(store=store).run(grid)
        # Truncate one record on disk; the warm run recomputes exactly it.
        fingerprint = job_fingerprint(grid.jobs()[0])
        path = store.object_path(JOB_NAMESPACE, fingerprint)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 3])
        runner = EngineRunner(store=store)
        frame = runner.run(grid)
        assert (runner.last_cached, runner.last_executed) == (1, 1)
        assert store.counters.corrupt == 1
        assert frame.to_json() == EngineRunner().run(grid).to_json()


class TestScenarioEnvelopes:
    def test_warm_envelope_is_byte_identical(self, tmp_path):
        scenario = load_scenario("examples/scenario_quick.json")
        store = DiskStore(str(tmp_path / "store"))
        cold = scenario_envelope(run_scenario(scenario, store=store))
        warm = scenario_envelope(run_scenario(scenario, store=store))
        reference = scenario_envelope(run_scenario(scenario))
        dump = lambda payload: json.dumps(payload, indent=2, sort_keys=True)
        assert dump(cold) == dump(warm) == dump(reference)

    def test_disk_store_survives_reopening(self, tmp_path):
        scenario = load_scenario("examples/scenario_quick.json")
        root = str(tmp_path / "store")
        run_scenario(scenario, store=DiskStore(root))
        reopened = DiskStore(root)
        runner = EngineRunner(store=reopened)
        runner.run_jobs(scenario.jobs())
        assert runner.last_executed == 0
