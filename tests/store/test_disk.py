"""Tests for the on-disk content-addressed store: layout, atomicity, LRU,
corruption handling, manifest healing, and concurrent writers."""

import gzip
import json
import multiprocessing
import os
import time

import pytest

from repro.store import DiskStore, MemoryStore, RECORD_SCHEMA, canonical_json

FP_A = "a" * 64
FP_B = "b" * 64
FP_C = "c" * 64


@pytest.fixture()
def store(tmp_path):
    return DiskStore(str(tmp_path / "store"))


class TestRoundTrip:
    def test_get_returns_none_on_absence(self, store):
        assert store.get("job", FP_A) is None
        assert store.counters.misses == 1

    def test_put_get_roundtrip(self, store):
        payload = {"kind": "trace", "metrics": {"oae_accuracy": 0.875}}
        store.put("job", FP_A, payload)
        assert store.get("job", FP_A) == payload
        assert store.counters.hits == 1
        assert store.counters.writes == 1

    def test_json_boundary_normalizes_tuples(self, store):
        store.put("job", FP_A, {"pair": ("505.mcf", "519.lbm")})
        assert store.get("job", FP_A) == {"pair": ["505.mcf", "519.lbm"]}

    def test_objects_are_sharded_by_fingerprint_prefix(self, store):
        store.put("job", FP_A, {})
        path = store.object_path("job", FP_A)
        assert os.path.exists(path)
        assert os.sep + os.path.join("objects", "job", "aa") + os.sep in path

    def test_namespaces_are_distinct(self, store):
        store.put("job", FP_A, {"x": 1})
        store.put("envelope", FP_A, {"x": 2})
        assert store.get("job", FP_A) == {"x": 1}
        assert store.get("envelope", FP_A) == {"x": 2}

    def test_invalid_keys_are_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("..", FP_A, {})
        with pytest.raises(ValueError):
            store.get("job", "../escape")
        with pytest.raises(ValueError):
            store.get("job", "short")

    def test_manifest_indexes_written_records(self, store):
        store.put("job", FP_A, {"x": 1})
        manifest = json.loads(
            (open(os.path.join(store.root, "manifest.json")).read()))
        assert manifest["schema"] == "repro.store/v1"
        assert f"job/{FP_A}" in manifest["entries"]

    def test_no_temp_files_survive_a_write(self, store):
        store.put("job", FP_A, {"x": 1})
        leftovers = [name for _, _, files in os.walk(store.root)
                     for name in files if name.endswith(".tmp")]
        assert leftovers == []

    def test_identical_writes_produce_identical_bytes(self, store, tmp_path):
        # Content-addressed writes are deterministic, so two processes racing
        # on one fingerprint publish the same file — last-wins is harmless.
        other = DiskStore(str(tmp_path / "other"))
        store.put("job", FP_A, {"metrics": {"x": 1.5}})
        other.put("job", FP_A, {"metrics": {"x": 1.5}})
        with open(store.object_path("job", FP_A), "rb") as a, \
                open(other.object_path("job", FP_A), "rb") as b:
            assert a.read() == b.read()


class TestCorruption:
    def test_truncated_record_degrades_to_a_miss(self, store):
        store.put("job", FP_A, {"metrics": {"x": 1.0}})
        path = store.object_path("job", FP_A)
        raw = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(raw[: len(raw) // 2])
        assert store.get("job", FP_A) is None
        assert store.counters.corrupt == 1
        assert not os.path.exists(path), "corrupt object must be dropped"
        # The slot is reusable afterwards.
        store.put("job", FP_A, {"metrics": {"x": 2.0}})
        assert store.get("job", FP_A) == {"metrics": {"x": 2.0}}

    def test_garbage_bytes_degrade_to_a_miss(self, store):
        path = store.object_path("job", FP_A)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(b"this is not gzip")
        assert store.get("job", FP_A) is None
        assert store.counters.corrupt == 1

    def test_record_under_wrong_address_degrades_to_a_miss(self, store):
        # A record whose embedded fingerprint disagrees with its filename
        # (hand-copied, renamed, index drift) must not be served.
        store.put("job", FP_A, {"x": 1})
        import shutil

        target = store.object_path("job", FP_B)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        shutil.copy(store.object_path("job", FP_A), target)
        assert store.get("job", FP_B) is None
        assert store.counters.corrupt == 1
        assert store.get("job", FP_A) == {"x": 1}

    def test_foreign_schema_record_is_rejected(self, store):
        path = store.object_path("job", FP_A)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        body = {"schema": "someone.elses/v9", "namespace": "job",
                "fingerprint": FP_A, "payload": {"x": 1}}
        with open(path, "wb") as handle:
            handle.write(gzip.compress(canonical_json(body).encode()))
        assert store.get("job", FP_A) is None
        assert store.counters.corrupt == 1


class TestWriteRetry:
    def test_transient_publish_failure_is_retried_once(self, store):
        # NFS-style blips (ESTALE, EINTR-adjacent rename races) deserve one
        # immediate retry before the error propagates.
        real = store._publish
        failures = [OSError("stale file handle")]

        def flaky(*args, **kwargs):
            if failures:
                raise failures.pop()
            return real(*args, **kwargs)

        store._publish = flaky
        store.put("job", FP_A, {"metrics": {"x": 1.0}})
        assert store.get("job", FP_A) == {"metrics": {"x": 1.0}}
        assert store.counters.retried == 1
        assert store.counters.writes == 1

    def test_persistent_publish_failure_raises_after_one_retry(self, store):
        calls = []

        def broken(*args, **kwargs):
            calls.append(1)
            raise OSError("disk full")

        store._publish = broken
        with pytest.raises(OSError, match="disk full"):
            store.put("job", FP_A, {"x": 1})
        assert len(calls) == 2  # the attempt and its single retry
        assert store.counters.retried == 1
        assert store.counters.writes == 0

    def test_retried_counter_is_reported_in_stats(self, store):
        assert store.stats()["retried"] == 0


class TestVerify:
    def test_clean_store_verifies_silently(self, store):
        store.put("job", FP_A, {"x": 1})
        assert store.verify() == []

    def test_verify_removes_unreadable_records(self, store):
        store.put("job", FP_A, {"x": 1})
        store.put("job", FP_B, {"x": 2})
        path = store.object_path("job", FP_B)
        with open(path, "wb") as handle:
            handle.write(b"junk")
        issues = store.verify()
        assert any("unreadable" in issue for issue in issues)
        assert not os.path.exists(path)
        assert store.get("job", FP_A) == {"x": 1}

    def test_verify_heals_manifest_drift_both_ways(self, store):
        store.put("job", FP_A, {"x": 1})
        manifest_path = os.path.join(store.root, "manifest.json")
        manifest = json.load(open(manifest_path))
        # Manifest lists a record that does not exist...
        manifest["entries"][f"job/{FP_C}"] = {"bytes": 123}
        # ...and omits one that does.
        del manifest["entries"][f"job/{FP_A}"]
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        issues = store.verify()
        assert any("missing record" in issue for issue in issues)
        assert any("missing from the manifest" in issue for issue in issues)
        healed = json.load(open(manifest_path))
        assert set(healed["entries"]) == {f"job/{FP_A}"}

    def test_large_store_batches_manifest_flushes(self, tmp_path):
        import gc as gc_module
        import hashlib

        from repro.store.disk import (
            _MANIFEST_EXACT_LIMIT,
            _MANIFEST_FLUSH_BATCH,
        )

        root = str(tmp_path / "big")
        store = DiskStore(root)
        count = _MANIFEST_EXACT_LIMIT + _MANIFEST_FLUSH_BATCH + 8
        for value in range(count):
            fingerprint = hashlib.sha256(str(value).encode()).hexdigest()
            store.put("job", fingerprint, {"n": value})
        manifest_path = os.path.join(root, "manifest.json")
        flushed = len(json.load(open(manifest_path))["entries"])
        # Past the exact limit the manifest lags (amortized flushes)...
        assert _MANIFEST_EXACT_LIMIT <= flushed < count
        # ...reads are unaffected (filesystem is the source of truth)...
        assert store.stats()["entries"] == count
        # ...and dropping the store flushes the remainder via its finalizer.
        del store
        gc_module.collect()
        assert len(json.load(open(manifest_path))["entries"]) == count

    def test_corrupt_manifest_is_rebuilt(self, store):
        store.put("job", FP_A, {"x": 1})
        with open(os.path.join(store.root, "manifest.json"), "w") as handle:
            handle.write("{not json")
        assert store.get("job", FP_A) == {"x": 1}  # reads never need it
        assert store.verify() == [
            f"record job/{FP_A} was missing from the manifest: indexed"]


class TestEviction:
    def test_lru_eviction_under_byte_cap(self, tmp_path):
        probe = DiskStore(str(tmp_path / "probe"))
        probe.put("job", FP_A, {"n": 0, "pad": "x" * 50})
        record_bytes = os.path.getsize(probe.object_path("job", FP_A))
        # Room for two records but not three.
        cap = record_bytes * 2 + record_bytes // 2
        store = DiskStore(str(tmp_path / "capped"), max_bytes=cap)
        for index, fingerprint in enumerate((FP_A, FP_B, FP_C)):
            store.put("job", fingerprint, {"n": index, "pad": "x" * 50})
        assert store.counters.evictions >= 1
        stats = store.stats()
        assert stats["bytes"] <= cap
        # The newest record always survives its own write.
        assert store.contains("job", FP_C)

    def test_gc_with_explicit_cap(self, store):
        for fingerprint in (FP_A, FP_B, FP_C):
            store.put("job", fingerprint, {"pad": "y" * 50})
        summary = store.gc(max_bytes=1)
        assert summary["evicted"] == 3
        assert store.stats()["entries"] == 0

    def test_gc_sweeps_stale_temp_files_only(self, store):
        store.put("job", FP_A, {"x": 1})
        directory = os.path.dirname(store.object_path("job", FP_A))
        stale = os.path.join(directory, "deadbeef.123.tmp")
        fresh = os.path.join(directory, "cafebabe.456.tmp")
        for path in (stale, fresh):
            with open(path, "wb") as handle:
                handle.write(b"partial")
        # Age the crash leftover; the fresh one models a live writer racing
        # gc between mkstemp and os.replace and must survive.
        old = time.time() - 3600
        os.utime(stale, (old, old))
        summary = store.gc()
        assert summary["temp_files_removed"] == 1
        assert not os.path.exists(stale)
        assert os.path.exists(fresh)
        assert store.get("job", FP_A) == {"x": 1}

    def test_gc_rejects_negative_caps(self, store):
        store.put("job", FP_A, {"x": 1})
        with pytest.raises(ValueError):
            store.gc(max_bytes=-5)
        assert store.contains("job", FP_A)

    def test_gc_without_cap_only_reindexes(self, store):
        store.put("job", FP_A, {"x": 1})
        summary = store.gc()
        assert summary["evicted"] == 0
        assert summary["entries"] == 1


def _hammer_store(root: str, fingerprint: str, payload_value: int) -> None:
    store = DiskStore(root)
    for _ in range(25):
        store.put("job", fingerprint, {"metrics": {"x": float(payload_value)}})


class TestConcurrentWriters:
    def test_two_processes_writing_the_same_fingerprint(self, tmp_path):
        # Identical fingerprint => identical content by construction; the
        # store must survive the race with a readable record and no crash.
        root = str(tmp_path / "shared")
        DiskStore(root)  # pre-create so both children race on objects only
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(target=_hammer_store, args=(root, FP_A, 7))
            for _ in range(2)
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0
        store = DiskStore(root)
        assert store.get("job", FP_A) == {"metrics": {"x": 7.0}}
        assert store.verify() == []

    def test_distinct_fingerprints_from_two_processes(self, tmp_path):
        root = str(tmp_path / "shared2")
        DiskStore(root)
        context = multiprocessing.get_context("fork")
        workers = [
            context.Process(target=_hammer_store, args=(root, fingerprint, value))
            for fingerprint, value in ((FP_A, 1), (FP_B, 2))
        ]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
            assert worker.exitcode == 0
        store = DiskStore(root)
        assert store.get("job", FP_A) == {"metrics": {"x": 1.0}}
        assert store.get("job", FP_B) == {"metrics": {"x": 2.0}}
        # The manifest may lag behind a racing writer, but verify reconciles
        # it from the objects on disk.
        store.verify()
        assert store.stats()["entries"] == 2


class TestMemoryStore:
    def test_roundtrip_and_counters(self):
        store = MemoryStore()
        assert store.get("job", FP_A) is None
        store.put("job", FP_A, {"metrics": {"x": 1.0}})
        assert store.get("job", FP_A) == {"metrics": {"x": 1.0}}
        assert store.counters.hits == 1
        assert store.counters.misses == 1

    def test_mutating_a_hit_does_not_poison_the_store(self):
        store = MemoryStore()
        store.put("job", FP_A, {"metrics": {"x": 1.0}})
        hit = store.get("job", FP_A)
        hit["metrics"]["x"] = 999.0
        assert store.get("job", FP_A) == {"metrics": {"x": 1.0}}

    def test_lru_bound(self):
        store = MemoryStore(max_entries=2)
        store.put("job", FP_A, {})
        store.put("job", FP_B, {})
        store.get("job", FP_A)  # refresh A; B becomes the eviction victim
        store.put("job", FP_C, {})
        assert store.contains("job", FP_A)
        assert not store.contains("job", FP_B)
        assert store.counters.evictions == 1

    def test_stats_shape_matches_disk(self, tmp_path):
        memory = MemoryStore()
        disk = DiskStore(str(tmp_path / "s"))
        memory.put("job", FP_A, {"x": 1})
        disk.put("job", FP_A, {"x": 1})
        shared_keys = {"entries", "bytes", "namespaces", "hits", "misses",
                       "writes", "evictions", "corrupt", "backend"}
        assert shared_keys <= set(memory.stats())
        assert shared_keys <= set(disk.stats())


def test_record_schema_constant_is_versioned():
    assert RECORD_SCHEMA.endswith("/v1")
