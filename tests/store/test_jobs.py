"""Tests for :mod:`repro.store.jobs`: queue bounds, the job state machine,
retry/backoff, watchdog supervision and persisted job-state records."""

import threading
import time

import pytest

import repro.store.jobs as jobs_module
from repro.engine.scenario import parse_scenario
from repro.faults import FaultInjector, parse_fault_spec
from repro.store import JOB_STATE_NAMESPACE, MemoryStore
from repro.store.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOBS_SCHEMA,
    QUEUED,
    RUNNING,
    TERMINAL_STATES,
    TIMEOUT,
    JobConflict,
    JobManager,
    QueueFull,
    _Job,
)


def _scenario(name, seed=1):
    return parse_scenario({
        "schema": "repro.scenario/v1",
        "name": name,
        "kind": "trace",
        "models": ["baseline"],
        "workloads": ["505.mcf"],
        "scale": {"branch_count": 400, "warmup_branches": 40, "seed": seed},
    })


def _manager(**kwargs):
    kwargs.setdefault("store", MemoryStore())
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("tick", 0.02)
    kwargs.setdefault("backoff_base", 0.01)
    kwargs.setdefault("abandon_grace", 0.1)
    return JobManager(**kwargs)


def _wedge_injector():
    return FaultInjector(parse_fault_spec("hang=wedge,hang_seconds=60"))


class TestLifecycle:
    def test_submit_runs_to_done(self):
        manager = _manager()
        try:
            payload, created = manager.submit(_scenario("happy"))
            assert created is True
            assert payload["schema"] == JOBS_SCHEMA
            assert payload["state"] == QUEUED
            fingerprint = payload["fingerprint"]
            final = manager.wait(fingerprint, timeout=30)
            assert final["state"] == DONE
            assert final["attempts"] == 1
            assert final["error"] is None
            assert final["progress"] == {"done": 1, "total": 1}
            # The envelope and the job state record were both persisted.
            assert manager.store.get("envelope", fingerprint)["result"]
            record = manager.store.get(JOB_STATE_NAMESPACE, fingerprint)
            assert record["state"] == DONE
        finally:
            manager.close()

    def test_single_flight_dedup(self):
        manager = _manager(workers=1, injector=_wedge_injector(),
                           job_timeout=60)
        try:
            first, created_first = manager.submit(_scenario("wedge-one"))
            second, created_second = manager.submit(_scenario("wedge-one"))
            assert created_first is True and created_second is False
            assert first["fingerprint"] == second["fingerprint"]
            assert second["state"] in (QUEUED, RUNNING)
        finally:
            manager.close()

    def test_payload_has_no_wallclock_fields(self):
        # Persisted records must be content-addressable and replica-stable:
        # a timestamp would make two replicas disagree byte-for-byte.
        manager = _manager()
        try:
            payload, _ = manager.submit(_scenario("payload-shape"))
            assert set(payload) == {
                "schema", "fingerprint", "state", "attempts", "max_attempts",
                "error", "scenario", "kind", "cells", "progress", "version",
            }
        finally:
            manager.close()

    def test_queue_full_raises_with_retry_hint(self):
        manager = _manager(workers=1, queue_depth=1,
                           injector=_wedge_injector(), job_timeout=60)
        try:
            manager.submit(_scenario("wedge-busy"))
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if manager.stats()["workers"]["busy"] >= 1:
                    break
                time.sleep(0.01)
            manager.submit(_scenario("sits-in-queue"))
            with pytest.raises(QueueFull) as info:
                manager.submit(_scenario("bounced"))
            assert info.value.retry_after > 0
            assert "full" in str(info.value)
        finally:
            manager.close()

    def test_submit_after_close_raises(self):
        manager = _manager()
        manager.close()
        with pytest.raises(RuntimeError, match="shut down"):
            manager.submit(_scenario("too-late"))

    def test_constructor_validation(self):
        store = MemoryStore()
        with pytest.raises(ValueError, match="workers"):
            JobManager(store=store, workers=0)
        with pytest.raises(ValueError, match="queue_depth"):
            JobManager(store=store, queue_depth=0)
        with pytest.raises(ValueError, match="max_attempts"):
            JobManager(store=store, max_attempts=0)
        with pytest.raises(ValueError, match="job_timeout"):
            JobManager(store=store, job_timeout=0)


class TestCancel:
    def test_cancel_queued_then_conflict_then_unknown(self):
        manager = _manager(workers=1, injector=_wedge_injector(),
                           job_timeout=60)
        try:
            manager.submit(_scenario("wedge-head"))
            victim, _ = manager.submit(_scenario("cancel-me"))
            fingerprint = victim["fingerprint"]
            payload = manager.cancel(fingerprint)
            assert payload["state"] == CANCELLED
            assert payload["attempts"] == 0
            # Already terminal: the second cancel is a conflict, not a no-op.
            with pytest.raises(JobConflict) as info:
                manager.cancel(fingerprint)
            assert info.value.state == CANCELLED
            with pytest.raises(KeyError):
                manager.cancel("f" * 64)
            # The cancellation was persisted for replicas.
            record = manager.store.get(JOB_STATE_NAMESPACE, fingerprint)
            assert record["state"] == CANCELLED
        finally:
            manager.close()

    def test_cancel_running_is_a_conflict(self):
        manager = _manager(workers=1, injector=_wedge_injector(),
                           job_timeout=60)
        try:
            payload, _ = manager.submit(_scenario("wedge-running"))
            fingerprint = payload["fingerprint"]
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if manager.get(fingerprint)["state"] == RUNNING:
                    break
                time.sleep(0.01)
            with pytest.raises(JobConflict, match="running"):
                manager.cancel(fingerprint)
        finally:
            manager.close()


class TestRetry:
    @staticmethod
    def _scripted_run(manager, outcomes):
        """Replace ``_run_job`` with a script: each entry is either an
        outcome tuple to report or an exception to die on (exercising the
        crash path); ``"real"`` delegates to the genuine implementation."""
        real = manager._run_job
        calls = []

        def fake(job, runner):
            calls.append(job.fingerprint)
            step = outcomes[min(len(calls), len(outcomes)) - 1]
            if step == "real":
                return real(job, runner)
            if isinstance(step, BaseException):
                raise step
            return runner, step

        manager._run_job = fake
        return calls

    def test_transient_failures_retry_until_success(self):
        manager = _manager(workers=1)
        try:
            calls = self._scripted_run(manager, [
                ("transient", "OSError: injected"),
                ("transient", "OSError: injected"),
                "real",
            ])
            payload, _ = manager.submit(_scenario("flaky"))
            final = manager.wait(payload["fingerprint"], timeout=30)
            assert final["state"] == DONE
            assert final["attempts"] == 3
            assert len(calls) == 3
        finally:
            manager.close()

    def test_transient_exhaustion_fails(self):
        manager = _manager(workers=1, max_attempts=2)
        try:
            self._scripted_run(manager, [("transient", "OSError: down")])
            payload, _ = manager.submit(_scenario("always-flaky"))
            final = manager.wait(payload["fingerprint"], timeout=30)
            assert final["state"] == FAILED
            assert final["attempts"] == 2
            assert "down" in final["error"]
        finally:
            manager.close()

    def test_permanent_failure_does_not_retry(self):
        manager = _manager(workers=1)
        try:
            calls = self._scripted_run(
                manager, [(FAILED, "ValueError: bad scenario cell")])
            payload, _ = manager.submit(_scenario("broken"))
            final = manager.wait(payload["fingerprint"], timeout=30)
            assert final["state"] == FAILED
            assert final["attempts"] == 1
            assert len(calls) == 1
        finally:
            manager.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_worker_crash_retries_and_respawns(self):
        # A BaseException escaping execution kills the worker thread; the
        # supervisor must both retry the job and replace the worker.
        manager = _manager(workers=1)
        try:
            self._scripted_run(manager, [
                SystemExit(3), SystemExit(3), "real"])
            payload, _ = manager.submit(_scenario("crashy"))
            final = manager.wait(payload["fingerprint"], timeout=30)
            assert final["state"] == DONE
            assert final["attempts"] == 3
            assert manager.stats()["workers"]["alive"] >= 1
        finally:
            manager.close()

    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning")
    def test_worker_crash_exhaustion_fails(self):
        manager = _manager(workers=1, max_attempts=2)
        try:
            self._scripted_run(manager, [SystemExit(3), SystemExit(3), "real"])
            payload, _ = manager.submit(_scenario("always-crashy"))
            final = manager.wait(payload["fingerprint"], timeout=30)
            assert final["state"] == FAILED
            assert final["error"] == "worker crashed mid-job"
            # The pool healed: a fresh job still completes.
            follow, _ = manager.submit(_scenario("after-the-crash"))
            assert manager.wait(follow["fingerprint"],
                                timeout=30)["state"] == DONE
        finally:
            manager.close()

    def test_backoff_is_deterministic_exponential_and_capped(self):
        manager = _manager(backoff_base=0.1, backoff_cap=1.0)
        other = _manager(backoff_base=0.1, backoff_cap=1.0)
        try:
            job = _Job("ab12cd34" + "0" * 56, _scenario("backoff"),
                       timeout=1.0, max_attempts=10)
            delays = []
            for attempt in range(1, 8):
                job.attempts = attempt
                delays.append(manager._backoff_delay(job))
                assert manager._backoff_delay(job) == delays[-1]
                assert other._backoff_delay(job) == delays[-1]
            # Jittered exponential: each pre-cap delay sits in
            # [base * 2^(n-1), 2 * base * 2^(n-1)]; the tail hits the cap.
            for attempt, delay in enumerate(delays, start=1):
                floor = 0.1 * (2 ** (attempt - 1))
                assert min(1.0, floor) <= delay <= min(1.0, 2 * floor)
            assert delays[-1] == 1.0
        finally:
            manager.close()
            other.close()


class TestWatchdog:
    def test_deadline_fires_and_pool_recovers(self):
        manager = _manager(workers=1, injector=_wedge_injector(),
                           job_timeout=0.3)
        try:
            payload, _ = manager.submit(_scenario("wedge-deadline"))
            final = manager.wait(payload["fingerprint"], timeout=30)
            assert final["state"] == TIMEOUT
            assert "deadline" in final["error"]
            # The wedged worker was abandoned and replaced; the replacement
            # still drains the queue.
            follow, _ = manager.submit(_scenario("post-recovery"))
            assert manager.wait(follow["fingerprint"],
                                timeout=30)["state"] == DONE
            assert manager.stats()["workers"]["alive"] >= 1
        finally:
            manager.close()

    def test_wait_timeout_returns_live_payload(self):
        manager = _manager(workers=1, injector=_wedge_injector(),
                           job_timeout=60)
        try:
            payload, _ = manager.submit(_scenario("wedge-wait"))
            live = manager.wait(payload["fingerprint"], timeout=0.1)
            assert live["state"] in (QUEUED, RUNNING)
        finally:
            manager.close()


class TestReplication:
    def test_any_replica_answers_for_a_persisted_job(self):
        store = MemoryStore()
        writer = _manager(store=store)
        try:
            payload, _ = writer.submit(_scenario("replicated"))
            fingerprint = payload["fingerprint"]
            assert writer.wait(fingerprint, timeout=30)["state"] == DONE
        finally:
            writer.close()
        replica = _manager(store=store)
        try:
            seen = replica.get(fingerprint)
            assert seen is not None
            assert seen["state"] == DONE
            assert seen["schema"] == JOBS_SCHEMA
            # Garbage in the jobstate namespace is not a job.
            store.put(JOB_STATE_NAMESPACE, "e" * 64, {"schema": "other/v1"})
            assert replica.get("e" * 64) is None
        finally:
            replica.close()

    def test_terminal_jobs_are_pruned_but_stay_readable(self, monkeypatch):
        monkeypatch.setattr(jobs_module, "_TERMINAL_KEEP", 2)
        manager = _manager(workers=1)
        try:
            fingerprints = []
            for index in range(4):
                payload, _ = manager.submit(_scenario("prune", seed=index))
                fingerprints.append(payload["fingerprint"])
                assert manager.wait(payload["fingerprint"],
                                    timeout=30)["state"] == DONE
            with manager._lock:
                in_memory = set(manager._jobs)
            assert len(in_memory) <= 2
            # Pruned jobs still answer via their persisted records.
            for fingerprint in fingerprints:
                assert manager.get(fingerprint)["state"] == DONE
        finally:
            manager.close()


class TestEvents:
    def test_events_end_with_the_terminal_payload(self):
        manager = _manager(workers=1)
        try:
            payload, _ = manager.submit(_scenario("evented"))
            events = []
            done = threading.Event()

            def consume():
                for event in manager.events(payload["fingerprint"],
                                            heartbeat=0.05):
                    events.append(event)
                done.set()

            threading.Thread(target=consume, daemon=True).start()
            assert done.wait(timeout=30)
            assert events
            assert events[-1]["state"] in TERMINAL_STATES
            assert events[-1]["state"] == DONE
            versions = [event["version"] for event in events]
            assert versions == sorted(versions)
        finally:
            manager.close()

    def test_events_for_unknown_job_end_immediately(self):
        manager = _manager()
        try:
            assert list(manager.events("d" * 64)) == []
        finally:
            manager.close()

    def test_opt_in_heartbeats_yield_none_between_versions(self):
        # The SSE writer turns None into comment frames to detect dead
        # clients; raw consumers (above) never see them by default.
        manager = _manager(workers=1, injector=_wedge_injector(),
                           job_timeout=60)
        try:
            payload, _ = manager.submit(_scenario("wedge-beat"))
            stream = manager.events(payload["fingerprint"], heartbeat=0.05,
                                    yield_heartbeats=True)
            seen = []
            for event in stream:
                seen.append(event)
                if seen.count(None) >= 2:
                    break
            assert None in seen
            assert all(event is None or "state" in event for event in seen)
        finally:
            manager.close()


class TestTraces:
    def test_done_job_persists_a_deterministic_span_tree(self):
        store = MemoryStore()
        manager = _manager(store=store, workers=1)
        try:
            payload, _ = manager.submit(_scenario("traced"))
            fingerprint = payload["fingerprint"]
            assert manager.wait(fingerprint, timeout=30)["state"] == DONE
            trace = manager.trace_for(fingerprint)
            assert trace is not None
            assert trace["schema"] == "repro.obstrace/v1"
            assert trace["fingerprint"] == fingerprint
            assert trace["root"]["name"] == "scenario"
            assert trace["root"]["attrs"]["scenario"] == "traced"
            # The tree was persisted content-addressed, so any replica
            # sharing the store answers identically from disk.
            assert store.get("obstrace", fingerprint) == trace
        finally:
            manager.close()

    def test_trace_for_unknown_job_is_none(self):
        manager = _manager()
        try:
            assert manager.trace_for("e" * 64) is None
        finally:
            manager.close()

    def test_trace_write_failure_degrades_silently(self):
        class TraceFailingStore(MemoryStore):
            def put(self, namespace, fingerprint, payload):
                if namespace == "obstrace":
                    raise OSError("disk full")
                super().put(namespace, fingerprint, payload)

        manager = _manager(store=TraceFailingStore(), workers=1)
        try:
            payload, _ = manager.submit(_scenario("trace-degraded"))
            fingerprint = payload["fingerprint"]
            assert manager.wait(fingerprint, timeout=30)["state"] == DONE
            # The in-memory copy still serves; the job itself succeeded.
            assert manager.trace_for(fingerprint) is not None
        finally:
            manager.close()
