"""Three-way differential tests: ``reference`` / ``fast`` / ``vector``.

The vector backend replays with array kernels (segmented counter scans,
history window kernels, a slim structural loop); these tests pin it — per
model family, including a re-randomization-heavy STBPU scenario and an SMT
pair — to byte-identical serialized result frames against both scalar paths,
plus unit-level parity of the underlying kernels.
"""

import logging

import numpy as np
import pytest

from repro.bpu.common import fold_bits
from repro.bpu.mapping import fold_bits_array
from repro.bpu.protections import make_unprotected_baseline
from repro.core.monitoring import MonitorConfig
from repro.core.remapping import keyed_remap, keyed_remap_array
from repro.core.stbpu import make_stbpu_skl
from repro.engine import EngineRunner, ExperimentScale, ModelSpec, SimulationGrid
from repro.sim import fastpath, vector
from repro.sim.bpu_sim import TraceSimulator
from repro.trace.branch import BranchRecord, BranchType, Trace

BACKENDS = ("reference", "fast", "vector")


def _family_jobs():
    """One representative grid cell per model family, every simulator kind.

    ``ST_SKLCond[r=0.0005]`` has aggressively low monitor thresholds, so its
    cells re-randomize many times mid-trace — exercising the vector backend's
    fired-chunk prefix commit.  The TAGE and Perceptron cells (both sizes,
    protected and unprotected) replay through the guarded span steppers, and
    every ablation facade rides along, so each registry family's kernel is
    pinned against both scalar paths.
    """
    scale = ExperimentScale(branch_count=2_000, warmup_branches=200, seed=13)
    rerand_heavy = ModelSpec.of("ST_SKLCond", r=0.0005)
    grids = [
        SimulationGrid(
            kind="trace",
            models=("baseline", "ucode_protection_1", "ucode_protection_2",
                    "conservative", "stbpu_variant", "ST_SKLCond", rerand_heavy,
                    "TAGE_SC_L_8KB", "TAGE_SC_L_64KB", "PerceptronBP",
                    "ST_TAGE_SC_L_8KB", "ST_TAGE_SC_L_64KB",
                    "ST_PerceptronBP"),
            workloads=("505.mcf", "apache2_prefork_c128"), scale=scale),
        SimulationGrid(
            kind="cpu", models=("baseline", "conservative", "ST_SKLCond",
                                "TAGE_SC_L_8KB", "PerceptronBP"),
            workloads=("541.leela",), scale=scale),
        SimulationGrid(
            kind="smt",
            models=("baseline", "ucode_protection_2", "conservative",
                    "ST_SKLCond", "ST_TAGE_SC_L_8KB", "ST_PerceptronBP"),
            workloads=(("505.mcf", "541.leela"),), scale=scale),
    ]
    jobs = []
    for grid in grids:
        jobs.extend(grid.jobs(start_index=len(jobs)))
    return jobs


class TestThreeWayParity:
    def test_family_grid_json_identical_across_backends(self):
        frames = {}
        for backend in BACKENDS:
            with fastpath.forced_backend(backend):
                frames[backend] = EngineRunner().run_jobs(_family_jobs())
        assert frames["vector"].to_json() == frames["fast"].to_json()
        assert frames["vector"].to_json() == frames["reference"].to_json()

    def test_rerandomization_heavy_replay_matches_scalar_state(self):
        """Mid-chunk monitor firings must leave *identical model state*, not
        just identical stats — tokens, counters, tables, BTB and histories."""
        from repro.engine import trace_for

        trace = trace_for("505.mcf", 5_000, 7)
        snapshots = {}
        for backend in ("fast", "vector"):
            with fastpath.forced_backend(backend):
                config = MonitorConfig(misprediction_threshold=60,
                                       eviction_threshold=45,
                                       direction_misprediction_threshold=None)
                model = make_stbpu_skl(monitor_config=config, seed=5)
                TraceSimulator(warmup_branches=250).run(model, trace)
                inner = model.inner
                snapshots[backend] = (
                    model.protection_stats(),
                    model.current_token().value,
                    (model.monitor.counters.mispredictions_remaining,
                     model.monitor.counters.evictions_remaining,
                     model.monitor.fired_count,
                     model.monitor.observed_mispredictions,
                     model.monitor.observed_evictions),
                    inner.direction.one_level._values,
                    inner.direction.two_level._values,
                    inner.direction.chooser._values,
                    [(e.valid, e.tag, e.offset, e.stored_target, e.lru_stamp)
                     for s in inner.btb._sets for e in s],
                    inner.btb._access_clock,
                    inner.btb.eviction_count,
                    list(inner.rsb._stack),
                    inner.history.ghr.value,
                    inner.history.bhb.value,
                    list(inner.history.outcomes),
                )
        assert snapshots["fast"][0]["rerandomizations"] > 5
        assert snapshots["fast"] == snapshots["vector"]

    def test_non_power_of_two_pht_entries(self):
        # The scalar PatternHistoryTable wraps every access with `% entries`;
        # the vector backend must apply the same wrap (regression: fold
        # outputs past a 12000-entry table raised IndexError).
        from repro.bpu.common import StructureSizes
        from repro.bpu.protections import make_unprotected_baseline
        from repro.engine import trace_for

        trace = trace_for("505.mcf", 2_000, 7)
        sizes = StructureSizes(pht_entries=12_000)
        stats = {}
        for backend in ("fast", "vector"):
            with fastpath.forced_backend(backend):
                model = make_unprotected_baseline(sizes)
                stats[backend] = TraceSimulator(warmup_branches=100).run(
                    model, trace).stats
        assert stats["fast"] == stats["vector"]

    @pytest.mark.parametrize("warmup", [0, 3, 7, 50])
    def test_warmup_boundaries(self, warmup):
        trace = Trace(name="edge")
        for index in range(40):
            trace.append(BranchRecord(
                ip=0x4000 + index * 64, target=0x9000 + (index % 5) * 256,
                taken=index % 3 != 0, branch_type=BranchType.CONDITIONAL))
        stats = {}
        for backend in ("fast", "vector"):
            with fastpath.forced_backend(backend):
                model = make_unprotected_baseline()
                stats[backend] = TraceSimulator(warmup_branches=warmup).run(
                    model, trace).stats
        assert stats["fast"] == stats["vector"], f"warmup={warmup}"


def _tage_state(direction):
    """Complete TAGE-SC-L predictor state, every table and register."""
    return (
        list(direction._bimodal),
        [[(e.valid, e.tag, e.counter, e.useful) for e in t]
         for t in direction._tables],
        [f.value for f in direction._index_folds],
        [f.value for f in direction._tag_folds],
        list(direction._ghist),
        direction._use_alt_on_na,
        direction._access_count,
        [(e.tag, e.past_iterations, e.current_iterations, e.confidence,
          e.valid) for e in direction._loop_table],
        [list(t) for t in direction._sc_tables],
    )


def _perceptron_state(direction):
    return [list(row) for row in direction._weights]


def _composite_state(composite):
    """Shared composite structures: BTB, RSB and the history registers."""
    return (
        [(e.valid, e.tag, e.offset, e.stored_target, e.lru_stamp)
         for btb_set in composite.btb._sets for e in btb_set],
        composite.btb._access_clock,
        composite.btb.eviction_count,
        list(composite.rsb._stack),
        composite.history.ghr.value,
        composite.history.bhb.value,
        list(composite.history.outcomes),
    )


class TestPredictorStateParity:
    """Fast-vs-vector *state* parity for the guarded TAGE/Perceptron kernels.

    The frame-level grid above already pins the serialized stats; these
    tests additionally require the post-replay predictor state — every
    tagged entry, fold register, weight row, BTB entry and history register
    — to be bit-identical, which is what makes mid-trace guard aborts and
    resumes observable even when they happen to leave the stats alone.
    """

    def _replay(self, factory, workload, state_fn, branches=6_000):
        from repro.engine import trace_for

        trace = trace_for(workload, branches, 7)
        snapshots = {}
        for backend in ("fast", "vector"):
            with fastpath.forced_backend(backend):
                model = factory()
                result = TraceSimulator(warmup_branches=250).run(model, trace)
                inner = getattr(model, "inner", model)
                token = (model.current_token().value
                         if hasattr(model, "current_token") else None)
                stats = (model.protection_stats()
                         if hasattr(model, "current_token") else None)
                snapshots[backend] = (result, stats, token,
                                      state_fn(inner.direction),
                                      _composite_state(inner))
        return snapshots

    @pytest.mark.parametrize("workload", ["505.mcf", "apache2_prefork_c128"])
    @pytest.mark.parametrize("config_name", ["TAGE_SC_L_8KB", "TAGE_SC_L_64KB"])
    def test_unprotected_tage_state(self, config_name, workload):
        from repro.bpu import tage as tage_module
        from repro.core.stbpu import make_unprotected_tage

        config = getattr(tage_module, config_name)
        snapshots = self._replay(lambda: make_unprotected_tage(config),
                                 workload, _tage_state)
        assert snapshots["fast"] == snapshots["vector"]

    @pytest.mark.parametrize("workload", ["505.mcf", "apache2_prefork_c128"])
    def test_unprotected_perceptron_state(self, workload):
        from repro.core.stbpu import make_unprotected_perceptron

        snapshots = self._replay(make_unprotected_perceptron, workload,
                                 _perceptron_state)
        assert snapshots["fast"] == snapshots["vector"]

    @pytest.mark.parametrize("config_name", ["TAGE_SC_L_8KB", "TAGE_SC_L_64KB"])
    def test_rerand_heavy_st_tage_state(self, config_name):
        # Aggressive monitor thresholds force the monitor to fire *inside*
        # stepper spans: the stepper must commit the executed prefix, abort
        # the rest of the block, re-specialize under the new token, and
        # resume exactly.  The rerandomization count pins that the abort
        # path actually ran.
        from repro.bpu import tage as tage_module
        from repro.core.stbpu import make_stbpu_tage

        config = getattr(tage_module, config_name)
        monitor = MonitorConfig(misprediction_threshold=60,
                                eviction_threshold=45,
                                direction_misprediction_threshold=None)
        snapshots = self._replay(
            lambda: make_stbpu_tage(config, monitor_config=monitor, seed=5),
            "505.mcf", _tage_state)
        assert snapshots["fast"][1]["rerandomizations"] > 5
        assert snapshots["fast"] == snapshots["vector"]

    def test_rerand_heavy_st_perceptron_state(self):
        from repro.core.stbpu import make_stbpu_perceptron

        monitor = MonitorConfig(misprediction_threshold=60,
                                eviction_threshold=45,
                                direction_misprediction_threshold=None)
        snapshots = self._replay(
            lambda: make_stbpu_perceptron(monitor_config=monitor, seed=5),
            "505.mcf", _perceptron_state)
        assert snapshots["fast"][1]["rerandomizations"] > 5
        assert snapshots["fast"] == snapshots["vector"]

    def test_perceptron_guard_abort_resumes_exactly(self):
        """A single hot conditional drives every access into one weight row:
        the first training in each speculative block stales the whole rest of
        the block, so nearly every later access takes the guard-abort path
        (live dot product) and must resume on the committed prefix."""
        from repro.core.stbpu import make_unprotected_perceptron

        trace = Trace(name="hot-row")
        for index in range(1_500):
            trace.append(BranchRecord(
                ip=0x4040, target=0x9000,
                taken=(index * 7) % 11 < 6,
                branch_type=BranchType.CONDITIONAL))
        snapshots = {}
        for backend in ("fast", "vector"):
            with fastpath.forced_backend(backend):
                model = make_unprotected_perceptron()
                result = TraceSimulator(warmup_branches=100).run(model, trace)
                snapshots[backend] = (result,
                                      _perceptron_state(model.direction))
        # The row trained (so block snapshots went stale mid-block) …
        assert any(any(weight for weight in row)
                   for row in snapshots["vector"][1])
        # … and the aborted accesses resumed bit-identically.
        assert snapshots["fast"] == snapshots["vector"]

    def test_tage_span_boundaries_resume_exactly(self, monkeypatch):
        # A tiny span cap forces many prepare/commit cycles mid-trace; the
        # carried history and fold registers must reseed each span exactly.
        from repro.core.stbpu import make_unprotected_tage

        monkeypatch.setattr(vector, "_STEPPER_SPAN_LIMIT", 64)
        snapshots = self._replay(make_unprotected_tage, "505.mcf",
                                 _tage_state, branches=2_000)
        assert snapshots["fast"] == snapshots["vector"]


class TestBackendSwitch:
    def test_default_backend_is_vector(self):
        assert fastpath.backend() in fastpath.BACKENDS
        assert fastpath.DEFAULT_BACKEND == "vector"

    def test_forced_backend_restores(self):
        before = fastpath.backend()
        with fastpath.forced_backend("reference"):
            assert fastpath.backend() == "reference"
            assert not fastpath.fast_path_enabled()
        assert fastpath.backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            fastpath.set_backend("simd")

    def test_legacy_two_level_api_maps_onto_backends(self):
        with fastpath.forced_fast_path(False):
            assert fastpath.backend() == "reference"
        with fastpath.forced_fast_path(True):
            assert fastpath.backend() == "fast"
            assert not fastpath.vector_enabled()

    def test_cli_backend_option(self, capsys, tmp_path):
        from repro.cli import main

        json_path = tmp_path / "f3.json"
        assert main(["figure3", "--workload-limit", "1", "--branches", "800",
                     "--warmup", "80", "--backend", "fast",
                     "--json", str(json_path)]) == 0
        assert json_path.exists()

    def test_fallback_is_logged_once(self, caplog):
        from repro.bpu.common import StructureSizes
        from repro.bpu.composite import make_skl_composite

        # Every registry model has a vector kernel now, so the fallback path
        # is pinned with a 3-bit-counter SKL composite (the SKL engine
        # builder only handles the 2-bit transition tables).
        vector._FALLBACK_LOGGED.discard("ThreeBitCond")
        model = make_skl_composite(
            sizes=StructureSizes(pht_counter_bits=3), name="ThreeBitCond")
        with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
            assert vector.kernel_status(model) == "fallback"
            assert vector.kernel_for(model) is None
            assert vector.kernel_for(model) is None
        notices = [record for record in caplog.records
                   if "no vector kernel" in record.message]
        assert len(notices) == 1

    def test_every_registry_model_has_a_kernel(self):
        from repro.engine.registry import build_model, list_models

        statuses = {name: vector.kernel_status(build_model(name, seed=0))
                    for name in list_models()}
        assert set(statuses.values()) <= {"kernel", "guarded"}
        assert statuses["TAGE_SC_L_64KB"] == "guarded"
        assert statuses["ST_PerceptronBP"] == "guarded"
        assert statuses["baseline"] == "kernel"
        assert statuses["stbpu_variant"] == "kernel"


class TestVectorKernels:
    def test_counter_scan_matches_naive_walk(self):
        rng = np.random.default_rng(3)
        for trial in range(5):
            entries = 17
            count = int(rng.integers(1, 200))
            indices = rng.integers(0, entries, size=count).astype(np.int64)
            takens = rng.integers(0, 2, size=count).astype(bool)
            table = rng.integers(0, 4, size=entries).astype(np.uint8)
            maps = np.where(takens, np.uint8(vector.MAP_INCREMENT),
                            np.uint8(vector.MAP_DECREMENT))
            expected_table = table.tolist()
            expected_pre = []
            for idx, taken in zip(indices.tolist(), takens.tolist()):
                value = expected_table[idx]
                expected_pre.append(value)
                expected_table[idx] = min(3, value + 1) if taken else max(0, value - 1)
            scanned = table.copy()
            pre, scan, _ = vector._scan_counters(indices, maps, scanned)
            scan.commit(scanned)
            assert pre.tolist() == expected_pre
            assert scanned.tolist() == expected_table

    def test_counter_scan_prefix_commit(self):
        indices = np.array([4, 4, 9, 4, 9], dtype=np.int64)
        maps = np.full(5, vector.MAP_INCREMENT, dtype=np.uint8)
        table = np.zeros(16, dtype=np.uint8)
        _, scan, _ = vector._scan_counters(indices, maps, table)
        scan.commit(table, upto=3)  # only the first three accesses executed
        assert table[4] == 2 and table[9] == 1

    def test_ghr_window_matches_shift_register(self):
        rng = np.random.default_rng(11)
        bits = 7
        outcomes = rng.integers(0, 2, size=50).astype(np.uint64)
        seed = 0b1011001
        values, extended = vector._ghr_window(outcomes, seed, bits)
        register = seed
        for position, outcome in enumerate(outcomes.tolist()):
            assert values[position] == register
            register = ((register << 1) | outcome) & ((1 << bits) - 1)
        assert vector._ghr_value_at(extended, len(outcomes), bits) == register

    def test_bhb_states_match_shift_register(self):
        rng = np.random.default_rng(17)
        bits = 58
        mixed = rng.integers(0, 1 << 23, size=80).astype(np.uint64)
        seed = int(rng.integers(0, 1 << 58))
        states = vector._bhb_states(mixed, seed, bits)
        mask = (1 << bits) - 1
        register = seed
        assert states[0] == register & mask
        for position, value in enumerate(mixed.tolist()):
            register = (((register << 2) & mask) ^ value) & mask
            assert states[position + 1] == register

    def test_fold_bits_array_matches_scalar(self):
        rng = np.random.default_rng(23)
        values = rng.integers(0, 1 << 58, size=64).astype(np.uint64)
        for input_bits, output_bits in ((32, 14), (58, 8), (48, 9), (8, 14)):
            folded = fold_bits_array(values, input_bits, output_bits)
            for raw, out in zip(values.tolist(), folded.tolist()):
                assert out == fold_bits(raw, input_bits, output_bits)

    def test_keyed_remap_array_matches_scalar(self):
        rng = np.random.default_rng(29)
        ips = rng.integers(0, 1 << 48, size=32).astype(np.uint64)
        bhbs = rng.integers(0, 1 << 58, size=32).astype(np.uint64)
        psi = 0xDEADBEEF
        out = keyed_remap_array(psi, ips, bhbs, output_bits=14, domain=4)
        for ip, bhb, digest in zip(ips.tolist(), bhbs.tolist(), out.tolist()):
            assert digest == keyed_remap(psi, ip, bhb, output_bits=14, domain=4)

    @pytest.mark.parametrize("width,history,count", [
        (11, 130, 40),     # short span: 2-D gather path
        (8, 3, 25),        # history shorter than the register
        (13, 640, 3_000),  # long span: per-plane slice path
        (1, 27, 80),       # degenerate single-bit register
    ])
    def test_fold_values_matches_incremental_fold(self, width, history, count):
        rng = np.random.default_rng(41)
        carried = [bool(b) for b in rng.integers(0, 2, size=137)]
        span = [bool(b) for b in rng.integers(0, 2, size=count)]
        pad = history + width + 8
        extended = np.zeros(pad + len(carried) + count, dtype=np.int64)
        extended[pad:pad + len(carried)] = carried
        extended[pad + len(carried):] = span
        parity = vector._strided_parity(extended, width)
        values = vector._fold_values(parity, pad, len(carried), count,
                                     history, width)
        for position in range(count):
            # The register the scalar fold holds when predicting span
            # outcome `position`: everything earlier has been absorbed.
            expected = vector._fold_register_value(
                carried + span[:position], history, width)
            assert int(values[position]) == expected, position

    def test_tage_map_kernels_match_scalar_and_batch(self):
        from repro.bpu.common import StructureSizes
        from repro.bpu.mapping import BaselineMappingProvider
        from repro.core.remapping import STMappingProvider
        from repro.core.secret_token import SecretToken

        rng = np.random.default_rng(43)
        count, index_bits, tag_bits = 48, 10, 12
        ips = rng.integers(0, 1 << 48, size=count).astype(np.uint64)
        folded = rng.integers(0, 1 << index_bits, size=count).astype(np.uint64)
        tables = (1, 2, 5)
        providers = [
            BaselineMappingProvider(StructureSizes()),
            STMappingProvider(SecretToken(0xA5A5_1234_DEAD_BEEF)),
        ]
        for provider in providers:
            maps = provider.vector_maps()
            per_table_idx, per_table_tag = [], []
            for table in tables:
                idx = maps.tage_indices(ips, folded, table, index_bits)
                tag = maps.tage_tags(ips, folded, table, tag_bits)
                per_table_idx.append(idx)
                per_table_tag.append(tag)
                for position in range(count):
                    assert int(idx[position]) == provider.tage_index(
                        int(ips[position]), int(folded[position]), table,
                        index_bits)
                    assert int(tag[position]) == provider.tage_tag(
                        int(ips[position]), int(folded[position]), table,
                        tag_bits)
            # Array-table batching: one concatenated call per output width
            # must reproduce the per-table calls exactly.
            batched_ips = np.concatenate([ips] * len(tables))
            batched_folded = np.concatenate([folded] * len(tables))
            batched_tables = np.repeat(
                np.asarray(tables, dtype=np.uint64), count)
            batched_idx = maps.tage_indices(
                batched_ips, batched_folded, batched_tables, index_bits)
            batched_tag = maps.tage_tags(
                batched_ips, batched_folded, batched_tables, tag_bits)
            assert batched_idx.tolist() == np.concatenate(per_table_idx).tolist()
            assert batched_tag.tolist() == np.concatenate(per_table_tag).tolist()

    def test_perceptron_rows_match_scalar(self):
        from repro.bpu.common import StructureSizes
        from repro.bpu.mapping import BaselineMappingProvider
        from repro.core.remapping import STMappingProvider
        from repro.core.secret_token import SecretToken

        rng = np.random.default_rng(47)
        ips = rng.integers(0, 1 << 48, size=64).astype(np.uint64)
        table_size = 1_097  # non-power-of-two exercises the modulo
        for provider in (BaselineMappingProvider(StructureSizes()),
                         STMappingProvider(SecretToken(0x0123_4567_89AB_CDEF))):
            rows = provider.vector_maps().perceptron_rows(ips, table_size)
            for position in range(ips.shape[0]):
                assert int(rows[position]) == provider.perceptron_index(
                    int(ips[position]), table_size)

    def test_outcome_trim_emulation(self):
        from repro.sim.vector import _extend_outcomes

        for existing_len, appended_len in ((0, 10), (100, 1300), (1280, 1),
                                           (1280, 2), (0, 1281), (0, 5000),
                                           (500, 2000)):
            reference = [True] * existing_len
            emulated = list(reference)
            appended = [bool(i % 3) for i in range(appended_len)]
            for outcome in appended:  # the scalar deferred-trim rule
                reference.append(outcome)
                if len(reference) > 1024 + 256:
                    del reference[: len(reference) - 1024]
            _extend_outcomes(emulated, appended, 1024)
            assert emulated == reference, (existing_len, appended_len)


class TestTraceArrays:
    def test_arrays_cached_and_decoded(self):
        from repro.engine import trace_for

        trace = trace_for("505.mcf", 1_000, 3)
        columns = trace.columns()
        arrays = columns.arrays()
        assert arrays is columns.arrays()  # cached
        assert arrays.ips.dtype == np.uint64
        assert arrays.ips.shape[0] == len(columns.branches)
        assert arrays.takens.tolist() == columns.takens
        assert (arrays.types == 0).tolist() == columns.conditionals
