"""Three-way differential tests: ``reference`` / ``fast`` / ``vector``.

The vector backend replays with array kernels (segmented counter scans,
history window kernels, a slim structural loop); these tests pin it — per
model family, including a re-randomization-heavy STBPU scenario and an SMT
pair — to byte-identical serialized result frames against both scalar paths,
plus unit-level parity of the underlying kernels.
"""

import logging

import numpy as np
import pytest

from repro.bpu.common import fold_bits
from repro.bpu.mapping import fold_bits_array
from repro.bpu.protections import make_unprotected_baseline
from repro.core.monitoring import MonitorConfig
from repro.core.remapping import keyed_remap, keyed_remap_array
from repro.core.stbpu import make_stbpu_skl
from repro.engine import EngineRunner, ExperimentScale, ModelSpec, SimulationGrid
from repro.sim import fastpath, vector
from repro.sim.bpu_sim import TraceSimulator
from repro.trace.branch import BranchRecord, BranchType, Trace

BACKENDS = ("reference", "fast", "vector")


def _family_jobs():
    """One representative grid cell per model family, every simulator kind.

    ``ST_SKLCond[r=0.0005]`` has aggressively low monitor thresholds, so its
    cells re-randomize many times mid-trace — exercising the vector backend's
    fired-chunk prefix commit; TAGE/Perceptron cells exercise the logged
    fallback path.
    """
    scale = ExperimentScale(branch_count=2_000, warmup_branches=200, seed=13)
    rerand_heavy = ModelSpec.of("ST_SKLCond", r=0.0005)
    grids = [
        SimulationGrid(
            kind="trace",
            models=("baseline", "ucode_protection_1", "ucode_protection_2",
                    "conservative", "ST_SKLCond", rerand_heavy,
                    "TAGE_SC_L_8KB", "PerceptronBP"),
            workloads=("505.mcf", "apache2_prefork_c128"), scale=scale),
        SimulationGrid(
            kind="cpu", models=("baseline", "conservative", "ST_SKLCond"),
            workloads=("541.leela",), scale=scale),
        SimulationGrid(
            kind="smt",
            models=("baseline", "ucode_protection_2", "conservative",
                    "ST_SKLCond"),
            workloads=(("505.mcf", "541.leela"),), scale=scale),
    ]
    jobs = []
    for grid in grids:
        jobs.extend(grid.jobs(start_index=len(jobs)))
    return jobs


class TestThreeWayParity:
    def test_family_grid_json_identical_across_backends(self):
        frames = {}
        for backend in BACKENDS:
            with fastpath.forced_backend(backend):
                frames[backend] = EngineRunner().run_jobs(_family_jobs())
        assert frames["vector"].to_json() == frames["fast"].to_json()
        assert frames["vector"].to_json() == frames["reference"].to_json()

    def test_rerandomization_heavy_replay_matches_scalar_state(self):
        """Mid-chunk monitor firings must leave *identical model state*, not
        just identical stats — tokens, counters, tables, BTB and histories."""
        from repro.engine import trace_for

        trace = trace_for("505.mcf", 5_000, 7)
        snapshots = {}
        for backend in ("fast", "vector"):
            with fastpath.forced_backend(backend):
                config = MonitorConfig(misprediction_threshold=60,
                                       eviction_threshold=45,
                                       direction_misprediction_threshold=None)
                model = make_stbpu_skl(monitor_config=config, seed=5)
                TraceSimulator(warmup_branches=250).run(model, trace)
                inner = model.inner
                snapshots[backend] = (
                    model.protection_stats(),
                    model.current_token().value,
                    (model.monitor.counters.mispredictions_remaining,
                     model.monitor.counters.evictions_remaining,
                     model.monitor.fired_count,
                     model.monitor.observed_mispredictions,
                     model.monitor.observed_evictions),
                    inner.direction.one_level._values,
                    inner.direction.two_level._values,
                    inner.direction.chooser._values,
                    [(e.valid, e.tag, e.offset, e.stored_target, e.lru_stamp)
                     for s in inner.btb._sets for e in s],
                    inner.btb._access_clock,
                    inner.btb.eviction_count,
                    list(inner.rsb._stack),
                    inner.history.ghr.value,
                    inner.history.bhb.value,
                    list(inner.history.outcomes),
                )
        assert snapshots["fast"][0]["rerandomizations"] > 5
        assert snapshots["fast"] == snapshots["vector"]

    def test_non_power_of_two_pht_entries(self):
        # The scalar PatternHistoryTable wraps every access with `% entries`;
        # the vector backend must apply the same wrap (regression: fold
        # outputs past a 12000-entry table raised IndexError).
        from repro.bpu.common import StructureSizes
        from repro.bpu.protections import make_unprotected_baseline
        from repro.engine import trace_for

        trace = trace_for("505.mcf", 2_000, 7)
        sizes = StructureSizes(pht_entries=12_000)
        stats = {}
        for backend in ("fast", "vector"):
            with fastpath.forced_backend(backend):
                model = make_unprotected_baseline(sizes)
                stats[backend] = TraceSimulator(warmup_branches=100).run(
                    model, trace).stats
        assert stats["fast"] == stats["vector"]

    @pytest.mark.parametrize("warmup", [0, 3, 7, 50])
    def test_warmup_boundaries(self, warmup):
        trace = Trace(name="edge")
        for index in range(40):
            trace.append(BranchRecord(
                ip=0x4000 + index * 64, target=0x9000 + (index % 5) * 256,
                taken=index % 3 != 0, branch_type=BranchType.CONDITIONAL))
        stats = {}
        for backend in ("fast", "vector"):
            with fastpath.forced_backend(backend):
                model = make_unprotected_baseline()
                stats[backend] = TraceSimulator(warmup_branches=warmup).run(
                    model, trace).stats
        assert stats["fast"] == stats["vector"], f"warmup={warmup}"


class TestBackendSwitch:
    def test_default_backend_is_vector(self):
        assert fastpath.backend() in fastpath.BACKENDS
        assert fastpath.DEFAULT_BACKEND == "vector"

    def test_forced_backend_restores(self):
        before = fastpath.backend()
        with fastpath.forced_backend("reference"):
            assert fastpath.backend() == "reference"
            assert not fastpath.fast_path_enabled()
        assert fastpath.backend() == before

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            fastpath.set_backend("simd")

    def test_legacy_two_level_api_maps_onto_backends(self):
        with fastpath.forced_fast_path(False):
            assert fastpath.backend() == "reference"
        with fastpath.forced_fast_path(True):
            assert fastpath.backend() == "fast"
            assert not fastpath.vector_enabled()

    def test_cli_backend_option(self, capsys, tmp_path):
        from repro.cli import main

        json_path = tmp_path / "f3.json"
        assert main(["figure3", "--workload-limit", "1", "--branches", "800",
                     "--warmup", "80", "--backend", "fast",
                     "--json", str(json_path)]) == 0
        assert json_path.exists()

    def test_fallback_is_logged_once(self, caplog):
        from repro.core.stbpu import make_unprotected_tage

        vector._FALLBACK_LOGGED.discard("TAGE_SC_L_64KB")
        model = make_unprotected_tage()
        with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
            assert vector.kernel_for(model) is None
            assert vector.kernel_for(model) is None
        notices = [record for record in caplog.records
                   if "no vector kernel" in record.message]
        assert len(notices) == 1


class TestVectorKernels:
    def test_counter_scan_matches_naive_walk(self):
        rng = np.random.default_rng(3)
        for trial in range(5):
            entries = 17
            count = int(rng.integers(1, 200))
            indices = rng.integers(0, entries, size=count).astype(np.int64)
            takens = rng.integers(0, 2, size=count).astype(bool)
            table = rng.integers(0, 4, size=entries).astype(np.uint8)
            maps = np.where(takens, np.uint8(vector.MAP_INCREMENT),
                            np.uint8(vector.MAP_DECREMENT))
            expected_table = table.tolist()
            expected_pre = []
            for idx, taken in zip(indices.tolist(), takens.tolist()):
                value = expected_table[idx]
                expected_pre.append(value)
                expected_table[idx] = min(3, value + 1) if taken else max(0, value - 1)
            scanned = table.copy()
            pre, scan, _ = vector._scan_counters(indices, maps, scanned)
            scan.commit(scanned)
            assert pre.tolist() == expected_pre
            assert scanned.tolist() == expected_table

    def test_counter_scan_prefix_commit(self):
        indices = np.array([4, 4, 9, 4, 9], dtype=np.int64)
        maps = np.full(5, vector.MAP_INCREMENT, dtype=np.uint8)
        table = np.zeros(16, dtype=np.uint8)
        _, scan, _ = vector._scan_counters(indices, maps, table)
        scan.commit(table, upto=3)  # only the first three accesses executed
        assert table[4] == 2 and table[9] == 1

    def test_ghr_window_matches_shift_register(self):
        rng = np.random.default_rng(11)
        bits = 7
        outcomes = rng.integers(0, 2, size=50).astype(np.uint64)
        seed = 0b1011001
        values, extended = vector._ghr_window(outcomes, seed, bits)
        register = seed
        for position, outcome in enumerate(outcomes.tolist()):
            assert values[position] == register
            register = ((register << 1) | outcome) & ((1 << bits) - 1)
        assert vector._ghr_value_at(extended, len(outcomes), bits) == register

    def test_bhb_states_match_shift_register(self):
        rng = np.random.default_rng(17)
        bits = 58
        mixed = rng.integers(0, 1 << 23, size=80).astype(np.uint64)
        seed = int(rng.integers(0, 1 << 58))
        states = vector._bhb_states(mixed, seed, bits)
        mask = (1 << bits) - 1
        register = seed
        assert states[0] == register & mask
        for position, value in enumerate(mixed.tolist()):
            register = (((register << 2) & mask) ^ value) & mask
            assert states[position + 1] == register

    def test_fold_bits_array_matches_scalar(self):
        rng = np.random.default_rng(23)
        values = rng.integers(0, 1 << 58, size=64).astype(np.uint64)
        for input_bits, output_bits in ((32, 14), (58, 8), (48, 9), (8, 14)):
            folded = fold_bits_array(values, input_bits, output_bits)
            for raw, out in zip(values.tolist(), folded.tolist()):
                assert out == fold_bits(raw, input_bits, output_bits)

    def test_keyed_remap_array_matches_scalar(self):
        rng = np.random.default_rng(29)
        ips = rng.integers(0, 1 << 48, size=32).astype(np.uint64)
        bhbs = rng.integers(0, 1 << 58, size=32).astype(np.uint64)
        psi = 0xDEADBEEF
        out = keyed_remap_array(psi, ips, bhbs, output_bits=14, domain=4)
        for ip, bhb, digest in zip(ips.tolist(), bhbs.tolist(), out.tolist()):
            assert digest == keyed_remap(psi, ip, bhb, output_bits=14, domain=4)

    def test_outcome_trim_emulation(self):
        from repro.sim.vector import _extend_outcomes

        for existing_len, appended_len in ((0, 10), (100, 1300), (1280, 1),
                                           (1280, 2), (0, 1281), (0, 5000),
                                           (500, 2000)):
            reference = [True] * existing_len
            emulated = list(reference)
            appended = [bool(i % 3) for i in range(appended_len)]
            for outcome in appended:  # the scalar deferred-trim rule
                reference.append(outcome)
                if len(reference) > 1024 + 256:
                    del reference[: len(reference) - 1024]
            _extend_outcomes(emulated, appended, 1024)
            assert emulated == reference, (existing_len, appended_len)


class TestTraceArrays:
    def test_arrays_cached_and_decoded(self):
        from repro.engine import trace_for

        trace = trace_for("505.mcf", 1_000, 3)
        columns = trace.columns()
        arrays = columns.arrays()
        assert arrays is columns.arrays()  # cached
        assert arrays.ips.dtype == np.uint64
        assert arrays.ips.shape[0] == len(columns.branches)
        assert arrays.takens.tolist() == columns.takens
        assert (arrays.types == 0).tolist() == columns.conditionals
