"""Differential tests: the columnar fast path must be invisible in results.

The simulators keep two replay implementations — the default columnar loop
over :class:`~repro.trace.branch.TraceColumns` and the per-item reference
loop.  These tests force each in turn over the same grids/traces and require
byte-identical serialized output, which is the contract that lets the fast
path evolve freely.
"""

import dataclasses
import multiprocessing

import pytest

from repro.bpu.protections import make_unprotected_baseline
from repro.core.stbpu import make_stbpu_skl
from repro.engine import EngineRunner, ExperimentScale, SimulationGrid
from repro.sim.bpu_sim import TraceSimulator
from repro.sim.fastpath import fast_path_enabled, forced_fast_path
from repro.sim.smt import SMTSimulator
from repro.trace.branch import (
    BranchRecord,
    BranchType,
    EventKind,
    Trace,
    TraceEvent,
)


def _mixed_jobs():
    """A small grid mixing every simulator-backed job kind."""
    scale = ExperimentScale(branch_count=1_500, warmup_branches=150, seed=13)
    grids = [
        SimulationGrid(kind="trace", models=("baseline", "ST_SKLCond"),
                       workloads=("505.mcf", "apache2_prefork_c128"), scale=scale),
        SimulationGrid(kind="cpu", models=("ucode_protection_2",),
                       workloads=("541.leela",), scale=scale),
        SimulationGrid(kind="smt", models=("conservative",),
                       workloads=(("505.mcf", "541.leela"),), scale=scale),
    ]
    jobs = []
    for grid in grids:
        jobs.extend(grid.jobs(start_index=len(jobs)))
    return jobs


class TestColumnarView:
    def test_columns_split_and_decode(self):
        trace = Trace(name="t")
        record = BranchRecord(ip=0x1000, target=0x2000, taken=True,
                              branch_type=BranchType.CONDITIONAL, context_id=4)
        trace.append(record)
        trace.append(TraceEvent(EventKind.CONTEXT_SWITCH, context_id=7))
        trace.append(dataclasses.replace(record, taken=False,
                                         branch_type=BranchType.RETURN))
        columns = trace.columns()
        assert columns.item_count == 3
        assert columns.branches == list(trace.branches())
        assert columns.ips == [0x1000, 0x1000]
        assert columns.targets == [0x2000, 0x2000]
        assert columns.takens == [True, False]
        assert columns.conditionals == [True, False]
        assert columns.context_ids == [4, 4]
        assert [event.kind for _, _, event in columns.segments if event is not None] == [
            EventKind.CONTEXT_SWITCH
        ]
        # Segments tile the branch list in order.
        assert [(start, stop) for start, stop, _ in columns.segments] == [(0, 1), (1, 2)]

    def test_columns_cache_rebuilds_after_append(self):
        trace = Trace(name="t")
        trace.append(BranchRecord(ip=0x1000, target=0x2000, taken=True,
                                  branch_type=BranchType.DIRECT_JUMP))
        first = trace.columns()
        assert trace.columns() is first  # cached
        trace.append(TraceEvent(EventKind.INTERRUPT, context_id=1))
        rebuilt = trace.columns()
        assert rebuilt is not first
        assert rebuilt.item_count == 2

    def test_fast_path_enabled_by_default(self):
        assert fast_path_enabled()


class TestReplayParity:
    def test_trace_simulator_paths_match(self, small_apache_trace):
        results = {}
        for enabled in (True, False):
            with forced_fast_path(enabled):
                model = make_stbpu_skl(seed=5)
                simulator = TraceSimulator(warmup_branches=300)
                results[enabled] = simulator.run(model, small_apache_trace)
        assert results[True].stats == results[False].stats
        assert results[True].report == results[False].report

    def test_smt_simulator_paths_match(self, small_mcf_trace, small_apache_trace):
        stats = {}
        for enabled in (True, False):
            with forced_fast_path(enabled):
                model = make_unprotected_baseline()
                result = SMTSimulator().run(model, small_mcf_trace, small_apache_trace)
                stats[enabled] = (result.thread_stats, result.protection)
        assert stats[True] == stats[False]

    def test_warmup_boundary_straddles_event_segments(self):
        # Warm-up ends mid-segment and an event splits the branch stream:
        # both paths must exclude exactly the same records.
        trace = Trace(name="edge")
        for index in range(10):
            trace.append(BranchRecord(ip=0x4000 + index * 64, target=0x9000,
                                      taken=True, branch_type=BranchType.DIRECT_JUMP))
            if index == 4:
                trace.append(TraceEvent(EventKind.CONTEXT_SWITCH, context_id=1))
        for warmup in (0, 3, 5, 7, 10, 12):
            stats = {}
            for enabled in (True, False):
                with forced_fast_path(enabled):
                    model = make_unprotected_baseline()
                    stats[enabled] = TraceSimulator(warmup_branches=warmup).run(
                        model, trace).stats
            assert stats[True] == stats[False], f"warmup={warmup}"


class TestEngineParity:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_mixed_grid_json_identical_across_paths(self, workers):
        if workers > 1 and "fork" not in multiprocessing.get_all_start_methods():
            # The fast-path switch is a module global; only forked workers
            # inherit it, so on spawn-only platforms the reference-path run
            # would silently execute the fast path and verify nothing.
            pytest.skip("parallel path toggling requires the fork start method")
        frames = {}
        for enabled in (True, False):
            with forced_fast_path(enabled):
                frames[enabled] = EngineRunner(workers=workers).run_jobs(_mixed_jobs())
        assert frames[True].to_json() == frames[False].to_json()
