"""Tests for the trace-driven BPU simulator, the CPU model, and the SMT simulator."""

import pytest

from repro.bpu.protections import make_ucode_protection_1, make_unprotected_baseline
from repro.bpu.composite import make_skl_composite
from repro.core.stbpu import make_stbpu_skl
from repro.sim import (
    CPUConfig,
    CycleApproximateCPU,
    SimulationLengths,
    SMTSimulator,
    TraceSimulator,
    harmonic_mean,
    geometric_mean,
    normalized,
    reduction,
)
from repro.trace.synthetic import generate_trace


class TestMetrics:
    def test_harmonic_mean_of_equal_values(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)

    def test_harmonic_mean_is_below_arithmetic(self):
        assert harmonic_mean([1.0, 3.0]) < 2.0

    def test_harmonic_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        assert harmonic_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_normalized_and_reduction_helpers(self):
        assert normalized(0.5, 1.0) == 0.5
        assert normalized(0.5, 0.0) == 0.0
        assert reduction(0.93, 0.95) == pytest.approx(0.02)


class TestTraceSimulator:
    def test_reports_plausible_accuracy(self, small_mcf_trace):
        simulator = TraceSimulator(warmup_branches=500)
        result = simulator.run(make_unprotected_baseline(), small_mcf_trace)
        assert 0.5 < result.report.oae_accuracy <= 1.0
        assert result.stats.branches == small_mcf_trace.branch_count - 500

    def test_warmup_branches_are_excluded(self, small_mcf_trace):
        without = TraceSimulator(warmup_branches=0).run(
            make_unprotected_baseline(), small_mcf_trace)
        with_warmup = TraceSimulator(warmup_branches=1000).run(
            make_unprotected_baseline(), small_mcf_trace)
        assert with_warmup.stats.branches == without.stats.branches - 1000
        assert with_warmup.report.oae_accuracy >= without.report.oae_accuracy - 0.02

    def test_os_events_reach_flushing_protection(self, small_apache_trace):
        model = make_ucode_protection_1()
        result = TraceSimulator().run(model, small_apache_trace)
        assert result.report.flushes > 0

    def test_stbpu_outperforms_flushing_on_event_heavy_trace(self, small_apache_trace):
        simulator = TraceSimulator(warmup_branches=400)
        flushing = simulator.run(make_ucode_protection_1(), small_apache_trace)
        protected = simulator.run(make_stbpu_skl(seed=1), small_apache_trace)
        baseline = simulator.run(make_unprotected_baseline(), small_apache_trace)
        assert protected.report.oae_accuracy >= flushing.report.oae_accuracy
        assert baseline.report.oae_accuracy >= flushing.report.oae_accuracy

    def test_compare_runs_every_model(self, small_mcf_trace):
        simulator = TraceSimulator()
        results = simulator.compare(
            [make_unprotected_baseline(), make_stbpu_skl(seed=2)], small_mcf_trace)
        assert set(results) == {"baseline", "ST_SKLCond"}


class TestCycleApproximateCPU:
    def test_ipc_bounded_by_ideal(self, small_mcf_trace):
        cpu = CycleApproximateCPU(lengths=SimulationLengths(warmup_branches=500,
                                                            measured_branches=3_000))
        result = cpu.run(make_skl_composite(), small_mcf_trace)
        assert 0.0 < result.performance.ipc <= cpu.config.ideal_ipc

    def test_worse_prediction_means_lower_ipc(self, small_mcf_trace):
        class AlwaysWrongDirection:
            """A deliberately bad direction component."""

            name = "always-wrong"

            def predict(self, ip, history):
                from repro.bpu.pht import DirectionPrediction
                return DirectionPrediction(taken=False, used_two_level=False,
                                           one_level_index=0, two_level_index=0)

            def update(self, prediction, taken, ip=0):
                return None

            def flush(self):
                return None

        from repro.bpu.composite import CompositeBPU
        cpu = CycleApproximateCPU(lengths=SimulationLengths(warmup_branches=0,
                                                            measured_branches=3_000))
        good = cpu.run(make_skl_composite(), small_mcf_trace)
        bad = cpu.run(CompositeBPU(AlwaysWrongDirection(), name="bad"), small_mcf_trace)
        assert bad.performance.ipc < good.performance.ipc

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CPUConfig(issue_width=0)
        with pytest.raises(ValueError):
            CPUConfig(misprediction_penalty_cycles=-1)


class TestSMTSimulator:
    def test_smt_run_produces_two_thread_reports(self):
        trace_a = generate_trace("503.bwaves", seed=3, branch_count=2_500)
        trace_b = generate_trace("505.mcf", seed=3, branch_count=2_500)
        simulator = SMTSimulator(lengths=SimulationLengths(warmup_branches=200,
                                                           measured_branches=2_000))
        result = simulator.run(make_skl_composite(), trace_a, trace_b)
        assert len(result.thread_performance) == 2
        assert result.hmean_ipc > 0
        assert result.thread_performance[0].workload == "503.bwaves"
        assert result.thread_performance[1].workload == "505.mcf"

    def test_smt_contexts_remain_distinct_for_stbpu(self):
        trace_a = generate_trace("541.leela", seed=4, branch_count=2_000)
        trace_b = generate_trace("541.leela", seed=4, branch_count=2_000)
        simulator = SMTSimulator(lengths=SimulationLengths(warmup_branches=100,
                                                           measured_branches=1_500))
        model = make_stbpu_skl(seed=4)
        result = simulator.run(model, trace_a, trace_b)
        # Two copies of the same program on two threads => at least two user tokens.
        user_contexts = {ctx for ctx in model.stats.contexts_seen if ctx >= 0}
        assert len(user_contexts) >= 2
        assert result.combined_direction_accuracy > 0.5
