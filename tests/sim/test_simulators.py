"""Tests for the trace-driven BPU simulator, the CPU model, and the SMT simulator."""

import dataclasses

import pytest

from repro.bpu.common import (
    AccessResult,
    BranchPredictorModel,
    Prediction,
    PredictorStats,
)
from repro.bpu.protections import make_ucode_protection_1, make_unprotected_baseline
from repro.bpu.composite import make_skl_composite
from repro.core.stbpu import make_stbpu_skl
from repro.sim import (
    CPUConfig,
    CycleApproximateCPU,
    SimulationLengths,
    SMTSimulator,
    TraceSimulator,
    harmonic_mean,
    geometric_mean,
    normalized,
    reduction,
)
from repro.trace.branch import (
    BranchRecord,
    BranchType,
    EventKind,
    PrivilegeMode,
    Trace,
    TraceEvent,
)
from repro.trace.synthetic import generate_trace


class RecordingModel(BranchPredictorModel):
    """Minimal model recording every hook invocation for dispatch tests."""

    name = "recording"

    def __init__(self):
        self.calls = []
        self.resets = 0

    def access(self, branch):
        self.calls.append(("access", branch.ip))
        return AccessResult(
            prediction=Prediction(taken=True, target=branch.target),
            direction_correct=True,
            target_correct=True,
            effective_correct=True,
        )

    def reset(self):
        self.resets += 1
        self.calls.append(("reset",))

    def on_context_switch(self, context_id):
        self.calls.append(("context_switch", context_id))

    def on_mode_switch(self, mode, context_id):
        self.calls.append(("mode_switch", mode, context_id))

    def on_interrupt(self, context_id):
        self.calls.append(("interrupt", context_id))


class TestMetrics:
    def test_harmonic_mean_of_equal_values(self):
        assert harmonic_mean([2.0, 2.0]) == pytest.approx(2.0)

    def test_harmonic_mean_is_below_arithmetic(self):
        assert harmonic_mean([1.0, 3.0]) < 2.0

    def test_harmonic_mean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            harmonic_mean([1.0, 0.0])
        assert harmonic_mean([]) == 0.0

    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_normalized_and_reduction_helpers(self):
        assert normalized(0.5, 1.0) == 0.5
        assert normalized(0.5, 0.0) == 0.0
        assert reduction(0.93, 0.95) == pytest.approx(0.02)


class TestTraceSimulator:
    def test_reports_plausible_accuracy(self, small_mcf_trace):
        simulator = TraceSimulator(warmup_branches=500)
        result = simulator.run(make_unprotected_baseline(), small_mcf_trace)
        assert 0.5 < result.report.oae_accuracy <= 1.0
        assert result.stats.branches == small_mcf_trace.branch_count - 500

    def test_warmup_branches_are_excluded(self, small_mcf_trace):
        without = TraceSimulator(warmup_branches=0).run(
            make_unprotected_baseline(), small_mcf_trace)
        with_warmup = TraceSimulator(warmup_branches=1000).run(
            make_unprotected_baseline(), small_mcf_trace)
        assert with_warmup.stats.branches == without.stats.branches - 1000
        assert with_warmup.report.oae_accuracy >= without.report.oae_accuracy - 0.02

    def test_os_events_reach_flushing_protection(self, small_apache_trace):
        model = make_ucode_protection_1()
        result = TraceSimulator().run(model, small_apache_trace)
        assert result.report.flushes > 0

    def test_stbpu_outperforms_flushing_on_event_heavy_trace(self, small_apache_trace):
        simulator = TraceSimulator(warmup_branches=400)
        flushing = simulator.run(make_ucode_protection_1(), small_apache_trace)
        protected = simulator.run(make_stbpu_skl(seed=1), small_apache_trace)
        baseline = simulator.run(make_unprotected_baseline(), small_apache_trace)
        assert protected.report.oae_accuracy >= flushing.report.oae_accuracy
        assert baseline.report.oae_accuracy >= flushing.report.oae_accuracy

    def test_compare_runs_every_model(self, small_mcf_trace):
        simulator = TraceSimulator()
        results = simulator.compare(
            [make_unprotected_baseline(), make_stbpu_skl(seed=2)], small_mcf_trace)
        assert set(results) == {"baseline", "ST_SKLCond"}

    def test_compare_resets_models_before_replay(self, small_mcf_trace):
        # Models are stateful; compare() owns the cold-start contract, so a
        # model that already replayed a trace must give the same comparison
        # numbers as a fresh instance.
        simulator = TraceSimulator(warmup_branches=200)
        model = RecordingModel()
        simulator.compare([model], small_mcf_trace)
        assert model.resets == 1

        warm = make_unprotected_baseline()
        simulator.run(warm, small_mcf_trace)  # leave trained state behind
        warm_result = simulator.compare([warm], small_mcf_trace)["baseline"]
        cold_result = simulator.compare([make_unprotected_baseline()],
                                        small_mcf_trace)["baseline"]
        assert warm_result.report == cold_result.report


class TestEventDispatch:
    """OS events in a trace must reach the model's protocol hooks."""

    @staticmethod
    def _event_trace() -> Trace:
        branch = BranchRecord(
            ip=0x1000, target=0x2000, taken=True,
            branch_type=BranchType.DIRECT_JUMP, context_id=1,
        )
        trace = Trace(name="events")
        trace.append(TraceEvent(EventKind.CONTEXT_SWITCH, context_id=7))
        trace.append(branch)
        trace.append(TraceEvent(EventKind.MODE_SWITCH_ENTER_KERNEL, context_id=7))
        trace.append(TraceEvent(EventKind.MODE_SWITCH_EXIT_KERNEL, context_id=7))
        trace.append(TraceEvent(EventKind.INTERRUPT, context_id=9))
        return trace

    def test_all_event_kinds_reach_model_hooks(self):
        model = RecordingModel()
        TraceSimulator().run(model, self._event_trace())
        assert model.calls == [
            ("context_switch", 7),
            ("access", 0x1000),
            ("mode_switch", PrivilegeMode.KERNEL, 7),
            ("mode_switch", PrivilegeMode.USER, 7),
            ("interrupt", 9),
        ]

    def test_smt_simulator_dispatches_events_too(self):
        model = RecordingModel()
        trace = self._event_trace()
        SMTSimulator(lengths=SimulationLengths(warmup_branches=0,
                                               measured_branches=10)).run(
            model, trace, trace)
        kinds = [call[0] for call in model.calls]
        assert "context_switch" in kinds
        assert "mode_switch" in kinds
        assert "interrupt" in kinds

    def test_interrupts_trigger_flushes_and_stbpu_kernel_tokens(self):
        trace = Trace(name="kernel-events")
        trace.append(TraceEvent(EventKind.MODE_SWITCH_ENTER_KERNEL, context_id=3))
        trace.append(BranchRecord(ip=0x9000, target=0x9100, taken=True,
                                  branch_type=BranchType.DIRECT_JUMP, context_id=3,
                                  mode=PrivilegeMode.KERNEL))
        trace.append(TraceEvent(EventKind.MODE_SWITCH_EXIT_KERNEL, context_id=3))
        trace.append(TraceEvent(EventKind.INTERRUPT, context_id=3))

        flushing = make_ucode_protection_1()
        TraceSimulator().run(flushing, trace)
        # Kernel entry + interrupt both flush under IBRS-style protection.
        assert flushing.protection_stats()["flushes"] >= 2

        stbpu = make_stbpu_skl(seed=1)
        TraceSimulator().run(stbpu, trace)
        from repro.core.stbpu import KERNEL_CONTEXT_ID
        assert KERNEL_CONTEXT_ID in stbpu.stats.contexts_seen


class TestProtectionStatsProtocol:
    def test_unprotected_models_report_nothing(self):
        assert make_unprotected_baseline().protection_stats() == {}
        assert make_skl_composite().protection_stats() == {}

    def test_protected_models_report_their_counters(self, small_apache_trace):
        simulator = TraceSimulator()
        flushing = make_ucode_protection_1()
        simulator.run(flushing, small_apache_trace)
        assert flushing.protection_stats()["flushes"] > 0

        stbpu = make_stbpu_skl(seed=1)
        simulator.run(stbpu, small_apache_trace)
        stats = stbpu.protection_stats()
        assert stats["token_loads"] > 0
        assert stats["contexts_seen"] >= 1

    def test_default_access_with_events_forwards_to_access(self):
        model = RecordingModel()
        branch = BranchRecord(ip=0x40, target=0x80, taken=True,
                              branch_type=BranchType.DIRECT_JUMP)
        result = model.access_with_events(branch)
        assert result.effective_correct
        assert model.calls == [("access", 0x40)]

    def test_merged_with_covers_every_counter_field(self):
        left = PredictorStats()
        right = PredictorStats()
        for position, stats_field in enumerate(dataclasses.fields(PredictorStats)):
            setattr(left, stats_field.name, position + 1)
            setattr(right, stats_field.name, 10 * (position + 1))
        merged = left.merged_with(right)
        for position, stats_field in enumerate(dataclasses.fields(PredictorStats)):
            assert getattr(merged, stats_field.name) == 11 * (position + 1)


class TestCycleApproximateCPU:
    def test_ipc_bounded_by_ideal(self, small_mcf_trace):
        cpu = CycleApproximateCPU(lengths=SimulationLengths(warmup_branches=500,
                                                            measured_branches=3_000))
        result = cpu.run(make_skl_composite(), small_mcf_trace)
        assert 0.0 < result.performance.ipc <= cpu.config.ideal_ipc

    def test_worse_prediction_means_lower_ipc(self, small_mcf_trace):
        class AlwaysWrongDirection:
            """A deliberately bad direction component."""

            name = "always-wrong"

            def predict(self, ip, history):
                from repro.bpu.pht import DirectionPrediction
                return DirectionPrediction(taken=False, used_two_level=False,
                                           one_level_index=0, two_level_index=0)

            def update(self, prediction, taken, ip=0):
                return None

            def flush(self):
                return None

        from repro.bpu.composite import CompositeBPU
        cpu = CycleApproximateCPU(lengths=SimulationLengths(warmup_branches=0,
                                                            measured_branches=3_000))
        good = cpu.run(make_skl_composite(), small_mcf_trace)
        bad = cpu.run(CompositeBPU(AlwaysWrongDirection(), name="bad"), small_mcf_trace)
        assert bad.performance.ipc < good.performance.ipc

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CPUConfig(issue_width=0)
        with pytest.raises(ValueError):
            CPUConfig(misprediction_penalty_cycles=-1)


class TestSMTSimulator:
    def test_smt_run_produces_two_thread_reports(self):
        trace_a = generate_trace("503.bwaves", seed=3, branch_count=2_500)
        trace_b = generate_trace("505.mcf", seed=3, branch_count=2_500)
        simulator = SMTSimulator(lengths=SimulationLengths(warmup_branches=200,
                                                           measured_branches=2_000))
        result = simulator.run(make_skl_composite(), trace_a, trace_b)
        assert len(result.thread_performance) == 2
        assert result.hmean_ipc > 0
        assert result.thread_performance[0].workload == "503.bwaves"
        assert result.thread_performance[1].workload == "505.mcf"

    def test_smt_contexts_remain_distinct_for_stbpu(self):
        trace_a = generate_trace("541.leela", seed=4, branch_count=2_000)
        trace_b = generate_trace("541.leela", seed=4, branch_count=2_000)
        simulator = SMTSimulator(lengths=SimulationLengths(warmup_branches=100,
                                                           measured_branches=1_500))
        model = make_stbpu_skl(seed=4)
        result = simulator.run(model, trace_a, trace_b)
        # Two copies of the same program on two threads => at least two user tokens.
        user_contexts = {ctx for ctx in model.stats.contexts_seen if ctx >= 0}
        assert len(user_contexts) >= 2
        assert result.combined_direction_accuracy > 0.5
