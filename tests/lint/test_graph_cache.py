"""The interprocedural engine and its incremental cache.

Covers the pieces the rule tests exercise only indirectly: call-target
resolution through attribute and return types, the taint fixpoint across
module boundaries, the lock/blocking summaries, and — the part CI leans on —
cache semantics: a warm project run re-analyzes zero modules, a single-module
edit re-analyzes exactly that module, and corrupt cache entries degrade to
misses instead of poisoning the analysis.
"""

import json

import pytest

from repro.lint import SummaryCache, run_lint
from repro.lint.framework import analyze_project, parse_project
from repro.lint.graph import build_analysis, source_sha256, summarize_module


@pytest.fixture
def analyze(make_tree):
    def run(files, cache=None):
        root = make_tree(files)
        project, _ = parse_project([root / "repro"])
        return build_analysis(
            [unit for unit in project.modules if unit.tree is not None],
            cache)
    return run


TREE = {
    "repro/store/keys.py": """\
        def fingerprint_of(payload):
            return hash(payload)  # repro-lint: disable=determinism -- fixture
        """,
    "repro/engine/runner.py": """\
        import threading
        import time
        from concurrent.futures import as_completed

        class Runner:
            def __init__(self, workers: int):
                self._lock = threading.Lock()
                self.workers = workers

            def wait(self, futures):
                return list(as_completed(futures))

            def run(self, futures):
                with self._lock:
                    return self.wait(futures)
        """,
    "repro/store/serve.py": """\
        from repro.engine.runner import Runner

        class Service:
            def __init__(self):
                self._runner = None

            def _ensure_runner(self) -> Runner:
                if self._runner is None:
                    self._runner = Runner(workers=2)
                return self._runner

            def submit(self, futures):
                return self._ensure_runner().run(futures)
        """,
}


class TestCallResolution:
    def test_method_resolution_through_return_types(self, analyze):
        # Service.submit -> _ensure_runner() (annotation + attr type) ->
        # Runner.run -> Runner.wait -> as_completed: the blocking fixpoint
        # must see the whole chain.
        analysis = analyze(TREE)
        blocking = analysis.blocking_functions()
        assert "repro.store.serve:Service.submit" in blocking
        chain = analysis.blocking_chain("repro.store.serve:Service.submit")
        assert chain[-1] == "concurrent.futures.as_completed"
        assert "repro.engine.runner:Runner.wait" in chain

    def test_lock_edges_cross_call_boundaries(self, analyze):
        analysis = analyze(TREE)
        acquires = analysis.transitive_acquires()
        # submit never touches a lock lexically; it inherits Runner.run's.
        assert acquires["repro.store.serve:Service.submit"] == {
            "repro.engine.runner:Runner._lock"}

    def test_import_graph_projects_resolved_calls(self, analyze):
        analysis = analyze(TREE)
        graph = analysis.import_graph()
        assert "repro.engine.runner" in graph["repro.store.serve"]

    def test_tainted_returns_propagate_across_modules(self, analyze):
        analysis = analyze({
            "repro/util/a.py": """\
                import time

                def now():
                    return time.time()
                """,
            "repro/util/b.py": """\
                from repro.util.a import now

                def launder():
                    return now()
                """,
        })
        tainted = analysis.tainted_returns()
        assert tainted["repro.util.a:now"] == {"time.time": None}
        assert tainted["repro.util.b:launder"] == {
            "time.time": "repro.util.a:now"}


class TestSummaries:
    def test_summaries_are_json_serializable(self, make_tree):
        root = make_tree(TREE)
        project, _ = parse_project([root / "repro"])
        for unit in project.modules:
            summary = summarize_module(unit.module, unit.rel, unit.tree)
            assert json.loads(json.dumps(summary)) == summary

    def test_source_hash_keys_on_module_name_and_content(self):
        assert source_sha256("a", "x = 1\n") != source_sha256("b", "x = 1\n")
        assert source_sha256("a", "x = 1\n") != source_sha256("a", "x = 2\n")
        assert source_sha256("a", "x = 1\n") == source_sha256("a", "x = 1\n")


class TestCacheSemantics:
    def test_warm_run_analyzes_zero_modules(self, make_tree, tmp_path):
        root = make_tree(TREE)
        cache_dir = tmp_path / "cache"
        cold = run_lint([root / "repro"], rule_ids=["lock-order"],
                        project_mode=True, cache_dir=cache_dir)
        assert cold.project["analyzed"] == cold.project["modules"] == 3
        assert cold.project["cache_misses"] == 3
        warm = run_lint([root / "repro"], rule_ids=["lock-order"],
                        project_mode=True, cache_dir=cache_dir)
        assert warm.project["analyzed"] == 0
        assert warm.project["cached"] == 3
        assert warm.project["cache_hits"] == 3

    def test_single_module_edit_reanalyzes_only_that_module(
            self, make_tree, tmp_path):
        root = make_tree(TREE)
        cache_dir = tmp_path / "cache"
        run_lint([root / "repro"], rule_ids=["lock-order"],
                 project_mode=True, cache_dir=cache_dir)
        serve = root / "repro/store/serve.py"
        serve.write_text(serve.read_text() + "\n# touched\n")
        report = run_lint([root / "repro"], rule_ids=["lock-order"],
                          project_mode=True, cache_dir=cache_dir)
        assert report.project["analyzed"] == 1
        assert report.project["cached"] == 2

    def test_corrupt_entry_degrades_to_a_miss(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        key = source_sha256("m", "x = 1\n")
        cache.put(key, {"module": "m"})
        path = tmp_path / "cache" / "summaries" / key[:2] / f"{key}.json"
        path.write_text("{ truncated", encoding="utf-8")
        assert cache.get(key) is None
        cache.put(key, {"module": "m"})
        assert cache.get(key) == {"module": "m"}
        stats = cache.stats()
        assert stats["cache_misses"] == 1
        assert stats["cache_writes"] == 2

    def test_wrong_key_or_schema_is_a_miss(self, tmp_path):
        cache = SummaryCache(tmp_path / "cache")
        key = source_sha256("m", "x = 1\n")
        other = source_sha256("m", "x = 2\n")
        cache.put(key, {"module": "m"})
        path = tmp_path / "cache" / "summaries" / other[:2] / f"{other}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        # A payload copied under the wrong key must not be trusted.
        stored = json.loads(
            (tmp_path / "cache" / "summaries" / key[:2] /
             f"{key}.json").read_text())
        path.write_text(json.dumps(stored), encoding="utf-8")
        assert cache.get(other) is None

    def test_analysis_version_is_part_of_the_key(self, make_tree, tmp_path,
                                                 monkeypatch):
        root = make_tree(TREE)
        cache_dir = tmp_path / "cache"
        run_lint([root / "repro"], rule_ids=["lock-order"],
                 project_mode=True, cache_dir=cache_dir)
        import repro.lint.graph as graph_mod
        monkeypatch.setattr(graph_mod, "ANALYSIS_VERSION",
                            graph_mod.ANALYSIS_VERSION + 1)
        report = run_lint([root / "repro"], rule_ids=["lock-order"],
                          project_mode=True, cache_dir=cache_dir)
        assert report.project["analyzed"] == 3, (
            "bumping ANALYSIS_VERSION must invalidate every cached summary")


class TestAnalyzeProjectHelper:
    def test_analyze_project_populates_the_cache(self, make_tree, tmp_path):
        root = make_tree(TREE)
        cache_dir = tmp_path / "cache"
        analysis = analyze_project([root / "repro"], cache_dir)
        assert analysis.stats["analyzed"] == 3
        again = analyze_project([root / "repro"], cache_dir)
        assert again.stats["cached"] == 3
        assert again.summaries == analysis.summaries
