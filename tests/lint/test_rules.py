"""Good/bad fixture pairs for every domain rule.

Each test builds a miniature ``repro/...`` tree and asserts the rule fires on
the seeded violation (bad) and stays silent on the idiomatic form (good).
"""


def rule_findings(report, rule):
    return [f for f in report.findings if f.rule == rule]


class TestDeterminism:
    def test_wall_clock_on_the_result_path_is_flagged(self, lint_tree):
        report = lint_tree({"repro/engine/timed.py": """\
            import time

            def stamp():
                return time.time()
            """}, rules=["determinism"])
        (finding,) = report.findings
        assert "time.time()" in finding.message
        assert finding.severity == "error"

    def test_aliased_import_is_resolved(self, lint_tree):
        report = lint_tree({"repro/trace/timed.py": """\
            from time import perf_counter as tick

            def stamp():
                return tick()
            """}, rules=["determinism"])
        (finding,) = report.findings
        assert "time.perf_counter()" in finding.message

    def test_unseeded_rng_flagged_seeded_rng_allowed(self, lint_tree):
        report = lint_tree({"repro/engine/rng.py": """\
            import random

            def bad():
                return random.Random()

            def good(seed):
                return random.Random(seed)
            """}, rules=["determinism"])
        assert len(report.findings) == 1
        assert "unseeded" in report.findings[0].message

    def test_module_level_rng_and_numpy_global_rng_flagged(self, lint_tree):
        report = lint_tree({"repro/experiments/draw.py": """\
            import random

            import numpy as np

            def draw():
                return random.randint(0, 7), np.random.rand()
            """}, rules=["determinism"])
        assert len(report.findings) == 2

    def test_seeded_numpy_generator_is_allowed(self, lint_tree):
        report = lint_tree({"repro/trace/gen.py": """\
            import numpy as np

            def generator(seed):
                return np.random.default_rng(seed)
            """}, rules=["determinism"])
        assert report.clean

    def test_builtin_hash_is_flagged(self, lint_tree):
        report = lint_tree({"repro/store/keys.py": """\
            def key_of(value):
                return hash(value)
            """}, rules=["determinism"])
        (finding,) = report.findings
        assert "PYTHONHASHSEED" in finding.message

    def test_set_iteration_flagged_sorted_iteration_allowed(self, lint_tree):
        report = lint_tree({"repro/engine/order.py": """\
            def bad(items):
                return [x for x in set(items)]

            def good(items):
                return [x for x in sorted(set(items))]
            """}, rules=["determinism"])
        (finding,) = report.findings
        assert "no defined order" in finding.message
        assert finding.line == 2

    def test_bench_module_is_out_of_scope(self, lint_tree):
        # A timing harness measures wall time by definition.
        report = lint_tree({"repro/bench.py": """\
            import time

            def measure():
                return time.perf_counter()
            """}, rules=["determinism"])
        assert report.clean


class TestFingerprintCoverage:
    KEYS_OK = """\
        JOB_FINGERPRINT_EXEMPT = frozenset({"index"})

        def job_fingerprint_fields(job):
            return {"kind": job.kind, "seed": job.seed}
        """
    GRID_OK = """\
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class Job:
            index: int
            kind: str
            seed: int
        """

    def test_covered_and_exempted_fields_pass(self, lint_tree):
        report = lint_tree({
            "repro/store/keys.py": self.KEYS_OK,
            "repro/engine/grid.py": self.GRID_OK,
        }, rules=["fingerprint-coverage"])
        assert report.clean

    def test_uncovered_field_is_flagged_at_its_declaration(self, lint_tree):
        report = lint_tree({
            "repro/store/keys.py": self.KEYS_OK,
            "repro/engine/grid.py": """\
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class Job:
                    index: int
                    kind: str
                    seed: int
                    backend: str
                """,
        }, rules=["fingerprint-coverage"])
        (finding,) = report.findings
        assert "Job.backend" in finding.message
        assert finding.path.endswith("repro/engine/grid.py")

    def test_missing_exemption_constant_is_flagged(self, lint_tree):
        report = lint_tree({
            "repro/store/keys.py": """\
                def job_fingerprint_fields(job):
                    return {"kind": job.kind, "seed": job.seed}
                """,
            "repro/engine/grid.py": self.GRID_OK,
        }, rules=["fingerprint-coverage"])
        messages = [f.message for f in report.findings]
        assert any("JOB_FINGERPRINT_EXEMPT is missing" in m for m in messages)
        # Without the constant the index field is uncovered too.
        assert any("Job.index" in m for m in messages)

    def test_stale_exemption_is_flagged(self, lint_tree):
        report = lint_tree({
            "repro/store/keys.py": self.KEYS_OK.replace(
                '{"index"}', '{"index", "ghost"}'),
            "repro/engine/grid.py": self.GRID_OK,
        }, rules=["fingerprint-coverage"])
        (finding,) = report.findings
        assert "'ghost'" in finding.message and "stale" in finding.message

    def test_exempting_a_fingerprinted_field_is_contradictory(self, lint_tree):
        report = lint_tree({
            "repro/store/keys.py": self.KEYS_OK.replace(
                '{"index"}', '{"index", "kind"}'),
            "repro/engine/grid.py": self.GRID_OK,
        }, rules=["fingerprint-coverage"])
        (finding,) = report.findings
        assert "contradictory" in finding.message

    def test_contract_skipped_when_dataclass_module_not_scanned(self, lint_tree):
        report = lint_tree({
            "repro/store/keys.py": self.KEYS_OK,
        }, rules=["fingerprint-coverage"])
        assert report.clean


class TestThreadSafety:
    def test_inconsistently_locked_attribute_is_flagged(self, lint_tree):
        report = lint_tree({"repro/store/counters.py": """\
            import threading

            class Counters:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0

                def add(self):
                    with self._lock:
                        self.hits += 1

                def add_racy(self):
                    self.hits += 1
            """}, rules=["thread-safety"])
        (finding,) = report.findings
        assert "both under its lock and (here) without it" in finding.message
        assert finding.line == 13

    def test_bare_read_modify_write_in_lock_owning_class(self, lint_tree):
        report = lint_tree({"repro/store/counters.py": """\
            import threading

            class Counters:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.writes = 0

                def add_write(self):
                    self.writes += 1
            """}, rules=["thread-safety"])
        (finding,) = report.findings
        assert "bare augassign of self.writes" in finding.message

    def test_module_global_mutated_without_lock(self, lint_tree):
        report = lint_tree({"repro/store/cache.py": """\
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value
            """}, rules=["thread-safety"])
        (finding,) = report.findings
        assert "module-level mutable 'CACHE'" in finding.message

    def test_locked_mutations_everywhere_pass(self, lint_tree):
        report = lint_tree({"repro/store/cache.py": """\
            import threading

            _LOCK = threading.Lock()
            REGISTRY = {}

            def register(key, value):
                with _LOCK:
                    REGISTRY[key] = value

            class Counters:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.hits = 0

                def add(self):
                    with self._lock:
                        self.hits += 1
            """}, rules=["thread-safety"])
        assert report.clean

    def test_class_without_a_lock_is_not_judged(self, lint_tree):
        # Whether an object is shared is declared by owning a lock.
        report = lint_tree({"repro/store/bag.py": """\
            class Bag:
                def __init__(self):
                    self.items = []

                def push(self, item):
                    self.items.append(item)
            """}, rules=["thread-safety"])
        assert report.clean

    def test_nested_def_does_not_inherit_the_lock_context(self, lint_tree):
        report = lint_tree({"repro/store/deferred.py": """\
            import threading

            class Service:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.jobs = 0

                def submit(self, pool):
                    with self._lock:
                        def work():
                            self.jobs += 1
                        pool(work)
            """}, rules=["thread-safety"])
        (finding,) = report.findings
        assert "self.jobs" in finding.message

    def test_dataclass_lock_field_counts_as_owning_a_lock(self, lint_tree):
        report = lint_tree({"repro/store/dc.py": """\
            import threading
            from dataclasses import dataclass, field

            @dataclass
            class Counters:
                hits: int = 0
                _lock: threading.Lock = field(default_factory=threading.Lock)

                def add(self):
                    self.hits += 1
            """}, rules=["thread-safety"])
        (finding,) = report.findings
        assert "bare augassign" in finding.message

    def test_engine_modules_are_out_of_scope(self, lint_tree):
        report = lint_tree({"repro/engine/cache.py": """\
            CACHE = {}

            def remember(key, value):
                CACHE[key] = value
            """}, rules=["thread-safety"])
        assert report.clean


class TestBackendParity:
    def test_provider_overriding_scalar_map_must_define_vector_maps(self, lint_tree):
        report = lint_tree({"repro/bpu/custom.py": """\
            from repro.bpu.mapping import BaselineMappingProvider

            class KeyedProvider(BaselineMappingProvider):
                __slots__ = ()

                def pht_index_1level(self, ip):
                    return ip & 7
            """}, rules=["backend-parity"])
        (finding,) = report.findings
        assert "pht_index_1level" in finding.message
        assert "vector_maps" in finding.message

    def test_explicit_return_none_fallback_passes(self, lint_tree):
        report = lint_tree({"repro/bpu/custom.py": """\
            from repro.bpu.mapping import BaselineMappingProvider

            class KeyedProvider(BaselineMappingProvider):
                __slots__ = ()

                def pht_index_1level(self, ip):
                    return ip & 7

                def vector_maps(self):
                    return None
            """}, rules=["backend-parity"])
        assert report.clean

    def test_ungated_vector_override_is_flagged(self, lint_tree):
        report = lint_tree({"repro/bpu/custom.py": """\
            class Maps:
                __slots__ = ("provider",)

                def __init__(self, provider):
                    self.provider = provider

            class EagerProvider:
                __slots__ = ()

                def vector_maps(self):
                    return Maps(self)
            """}, rules=["backend-parity"])
        (finding,) = report.findings
        assert "EagerProvider.vector_maps()" in finding.message

    def test_exact_class_gate_passes(self, lint_tree):
        report = lint_tree({"repro/bpu/custom.py": """\
            class Maps:
                __slots__ = ("provider",)

                def __init__(self, provider):
                    self.provider = provider

            class GatedProvider:
                __slots__ = ()

                def vector_maps(self):
                    if type(self) is not GatedProvider:
                        return None
                    return Maps(self)
            """}, rules=["backend-parity"])
        assert report.clean

    def test_kernel_factory_delegation_passes(self, lint_tree):
        report = lint_tree({"repro/bpu/model.py": """\
            class WrapperModel:
                __slots__ = ("inner",)

                def vector_kernel(self):
                    from repro.sim import vector

                    return vector.flushing_kernel(self)
            """}, rules=["backend-parity"])
        assert report.clean

    def test_codec_overriding_encode_must_define_vector_encode(self, lint_tree):
        report = lint_tree({"repro/bpu/codec.py": """\
            from repro.bpu.mapping import TargetCodec

            class XorCodec(TargetCodec):
                __slots__ = ()

                def encode(self, target):
                    return target ^ 1

                def decode(self, stored):
                    return stored ^ 1
            """}, rules=["backend-parity"])
        (finding,) = report.findings
        assert "vector_encode" in finding.message

    def test_stepper_missing_protocol_methods_is_flagged(self, lint_tree):
        report = lint_tree({"repro/sim/vector.py": """\
            STEPPER_PROTOCOL = ("begin", "prepare_span", "commit_span",
                                "flush", "finish")

            class _HalfStepper:
                __slots__ = ()

                def begin(self):
                    pass

                def prepare_span(self, span):
                    pass
            """}, rules=["backend-parity"])
        (finding,) = report.findings
        assert "_HalfStepper" in finding.message
        for method in ("commit_span", "finish", "flush"):
            assert method in finding.message

    def test_missing_protocol_constant_is_itself_a_finding(self, lint_tree):
        report = lint_tree({"repro/sim/vector.py": """\
            class _LoneStepper:
                __slots__ = ()

                def begin(self):
                    pass
            """}, rules=["backend-parity"])
        (finding,) = report.findings
        assert "STEPPER_PROTOCOL" in finding.message

    def test_complete_stepper_passes(self, lint_tree):
        report = lint_tree({"repro/sim/vector.py": """\
            STEPPER_PROTOCOL = ("begin", "finish")

            class _FullStepper:
                __slots__ = ()

                def begin(self):
                    pass

                def finish(self):
                    pass
            """}, rules=["backend-parity"])
        assert report.clean


class TestHotPath:
    def test_slotless_class_in_bpu_module_is_flagged(self, lint_tree):
        report = lint_tree({"repro/bpu/thing.py": """\
            class Entry:
                def __init__(self):
                    self.value = 0
            """}, rules=["hot-path"])
        (finding,) = report.findings
        assert "Entry" in finding.message and "__slots__" in finding.message
        assert finding.severity == "warning"

    def test_slots_and_slotted_dataclass_pass(self, lint_tree):
        report = lint_tree({"repro/bpu/thing.py": """\
            from dataclasses import dataclass

            class Entry:
                __slots__ = ("value",)

                def __init__(self):
                    self.value = 0

            @dataclass(slots=True)
            class Key:
                index: int
            """}, rules=["hot-path"])
        assert report.clean

    def test_exception_and_protocol_classes_are_exempt(self, lint_tree):
        report = lint_tree({"repro/bpu/thing.py": """\
            from typing import Protocol

            class ReplayError(Exception):
                pass

            class Steppable(Protocol):
                def begin(self): ...
            """}, rules=["hot-path"])
        assert report.clean

    def test_isinstance_inside_replay_loop_is_flagged_once(self, lint_tree):
        report = lint_tree({"repro/sim/fastpath.py": """\
            def replay(items):
                total = 0
                for batch in items:
                    for item in batch:
                        if isinstance(item, int):
                            total += item
                return total
            """}, rules=["hot-path"])
        # One call, even though it sits inside two nested loops.
        assert len(report.findings) == 1
        assert "isinstance" in report.findings[0].message

    def test_isinstance_outside_loops_is_allowed(self, lint_tree):
        report = lint_tree({"repro/sim/fastpath.py": """\
            def prepare(source):
                if isinstance(source, list):
                    return source
                return list(source)
            """}, rules=["hot-path"])
        assert report.clean

    def test_reference_replay_modules_are_out_of_scope(self, lint_tree):
        report = lint_tree({"repro/sim/bpu_sim.py": """\
            class Replayer:
                def run(self, events):
                    for event in events:
                        if isinstance(event, tuple):
                            pass
            """}, rules=["hot-path"])
        assert report.clean
