"""Dogfood self-checks: the shipped tree must satisfy its own linter.

These tests run from the repository root (the suite's working directory) and
pin three facts: ``repro lint src/`` is green under the shipped baseline, the
checked-in ``lint-baseline.json`` matches a fresh scan byte-for-byte (no
stale or missing grandfathered entries), and the inline suppressions in the
source tree are all used and justified.
"""

import json

from repro.cli import main
from repro.lint import baseline_payload, run_lint

BASELINE_FILE = "lint-baseline.json"


class TestShippedTree:
    def test_repro_lint_src_is_clean(self, capsys):
        assert main(["lint", "src"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_shipped_baseline_matches_a_fresh_scan(self):
        report = run_lint(["src"], baseline=None)
        fresh = baseline_payload(report.findings)
        with open(BASELINE_FILE, encoding="utf-8") as handle:
            shipped = json.load(handle)
        assert fresh == shipped, (
            "lint-baseline.json is out of date; regenerate it with "
            "`python -m repro lint src/ --write-baseline` after deciding "
            "whether each change should instead be fixed")

    def test_baseline_entries_are_grandfathered_not_new(self):
        # Every shipped entry must still match a real finding: a fixed
        # violation must leave the baseline too.
        report = run_lint(["src"], baseline=None)
        live = {finding.baseline_key for finding in report.findings}
        with open(BASELINE_FILE, encoding="utf-8") as handle:
            shipped = json.load(handle)
        for entry in shipped["entries"]:
            assert (entry["rule"], entry["path"], entry["message"]) in live

    def test_suppressions_in_src_are_used_and_justified(self):
        # A full run flags unknown/unjustified/unused markers via the
        # `suppression` rule; clean-with-baseline implies none exist, and the
        # counter pins that the runner.py wall-time markers stay live.
        report = run_lint(["src"], baseline=None)
        assert report.suppressed >= 2
        assert not [f for f in report.findings if f.rule == "suppression"]
