"""Dogfood self-checks: the shipped tree must satisfy its own linter.

These tests run from the repository root (the suite's working directory) and
pin the facts the CI gate relies on: ``repro lint src/`` and ``repro lint
--project src/`` are both green, the checked-in ``lint-baseline.json`` is
**empty** (the PR 7 grandfathered findings are fixed — the ratchet keeps it
that way), the checked-in ``api-surface.json`` matches a fresh analysis of
the tree, and the inline suppressions in the source tree are all used and
justified.
"""

import json

from repro.cli import main
from repro.lint import analyze_project, baseline_payload, run_lint
from repro.lint.rules.schema_drift import surface_payload

BASELINE_FILE = "lint-baseline.json"
SURFACE_FILE = "api-surface.json"


class TestShippedTree:
    def test_repro_lint_src_is_clean(self, capsys):
        assert main(["lint", "src"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_repro_lint_project_src_is_clean(self, capsys):
        # The full interprocedural gate: lock-order, taint-determinism and
        # schema-drift against the checked-in surface, fresh analysis.
        assert main(["lint", "--project", "--no-cache", "src"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_shipped_baseline_is_empty_and_stays_empty(self):
        # The ratchet: PR 8 burned the baseline down to zero entries; any
        # regrowth means a new violation was grandfathered instead of fixed.
        with open(BASELINE_FILE, encoding="utf-8") as handle:
            shipped = json.load(handle)
        assert shipped["entries"] == [], (
            "lint-baseline.json must stay empty: fix new findings instead "
            "of re-baselining them")
        report = run_lint(["src"], baseline=None)
        assert baseline_payload(report.findings) == shipped

    def test_shipped_surface_matches_a_fresh_analysis(self):
        analysis = analyze_project(["src"])
        fresh = surface_payload(analysis)
        with open(SURFACE_FILE, encoding="utf-8") as handle:
            shipped = json.load(handle)
        assert fresh == shipped, (
            "api-surface.json is out of date; if the schema change was "
            "intentional (version bumped), re-record it with "
            "`python -m repro lint --write-surface src/`")

    def test_suppressions_in_src_are_used_and_justified(self):
        # A project run exercises every rule, so every marker is judged for
        # staleness; the counter pins that the runner.py wall-time markers
        # stay live.  (serve.py's old lock-order marker is gone: the async
        # job tier no longer holds a lock across execution.)
        report = run_lint(["src"], baseline=None, project_mode=True)
        assert report.suppressed >= 2
        assert not [f for f in report.findings if f.rule == "suppression"]

    def test_project_envelope_reports_analysis_counters(self, capsys, tmp_path):
        cache = tmp_path / "lint-cache"
        assert main(["lint", "--project", "--cache-dir", str(cache),
                     "src", "--json"]) == 0
        cold = json.loads(capsys.readouterr().out)["result"]["project"]
        assert cold["analyzed"] == cold["modules"] > 0
        assert cold["cached"] == 0
        assert main(["lint", "--project", "--cache-dir", str(cache),
                     "src", "--json"]) == 0
        warm = json.loads(capsys.readouterr().out)["result"]["project"]
        assert warm["analyzed"] == 0, "warm run must re-analyze 0 modules"
        assert warm["cached"] == warm["modules"] == cold["modules"]
        assert warm["cache_hits"] == warm["modules"]
