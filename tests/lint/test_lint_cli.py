"""The ``repro lint`` command: exit codes, --json envelope, --list-rules,
baseline flags, and the CI gate invocation."""

import json

import pytest

from repro.cli import main
from repro.lint import BASELINE_SCHEMA, LINT_SCHEMA

CLEAN = {"repro/engine/ok.py": "def ok():\n    return 1\n"}
DIRTY = {"repro/engine/timed.py": (
    "import time\n\n\ndef stamp():\n    return time.time()\n")}


@pytest.fixture
def tree(make_tree, monkeypatch, tmp_path):
    """Build a fixture tree and chdir into it (no repo baseline in scope)."""

    def build(files):
        make_tree(files)
        monkeypatch.chdir(tmp_path)
        return tmp_path

    return build


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tree, capsys):
        tree(CLEAN)
        assert main(["lint", "repro"]) == 0
        assert "lint: clean" in capsys.readouterr().out

    def test_findings_exit_one_with_rendered_lines(self, tree, capsys):
        tree(DIRTY)
        assert main(["lint", "repro"]) == 1
        out = capsys.readouterr().out
        assert "repro/engine/timed.py:5:12: error[determinism]" in out
        assert "lint: 1 finding(s)" in out

    def test_unknown_rule_is_a_usage_error(self, tree, capsys):
        tree(CLEAN)
        assert main(["lint", "--rule", "no-such-rule", "repro"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, tree, capsys):
        tree(CLEAN)
        assert main(["lint", "no/such/dir"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_missing_explicit_baseline_is_a_usage_error(self, tree, capsys):
        tree(CLEAN)
        assert main(["lint", "--baseline", "absent.json", "repro"]) == 2
        assert "absent.json" in capsys.readouterr().err

    def test_rule_filter_runs_only_that_rule(self, tree, capsys):
        tree(DIRTY)
        assert main(["lint", "--rule", "hot-path", "repro"]) == 0
        assert main(["lint", "--rule", "determinism", "repro"]) == 1


class TestJsonEnvelope:
    def test_stdout_envelope_shape(self, tree, capsys):
        tree(DIRTY)
        assert main(["lint", "repro", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == LINT_SCHEMA
        assert payload["spec"] == "lint"
        result = payload["result"]
        assert result["counts"] == {
            "active": 1, "suppressed": 0, "baselined": 0}
        (finding,) = result["findings"]
        assert finding == {
            "rule": "determinism",
            "severity": "error",
            "scope": "module",
            "path": "repro/engine/timed.py",
            "line": 5,
            "col": 12,
            "message": finding["message"],
        }
        assert "time.time()" in finding["message"]
        assert result["timing"].keys() >= {"determinism", "hot-path"}

    def test_file_envelope_plus_text_report(self, tree, capsys):
        root = tree(DIRTY)
        assert main(["lint", "--json", "report.json", "repro"]) == 1
        out = capsys.readouterr().out
        assert "JSON written to report.json" in out
        assert "error[determinism]" in out
        payload = json.loads((root / "report.json").read_text())
        assert payload["schema"] == LINT_SCHEMA
        assert payload["result"]["counts"]["active"] == 1

    def test_clean_envelope_lists_all_rules(self, tree, capsys):
        tree(CLEAN)
        assert main(["lint", "repro", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["result"]["findings"] == []
        assert payload["result"]["rules"] == sorted(
            payload["result"]["rules"])
        assert "determinism" in payload["result"]["rules"]


class TestListRules:
    EXPECTED = [
        "backend-parity",
        "determinism",
        "fingerprint-coverage",
        "hot-path",
        "lock-order",
        "schema-drift",
        "suppression",
        "syntax",
        "taint-determinism",
        "thread-safety",
    ]

    def test_listing_is_pinned_and_sorted(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert [line.split()[0] for line in lines] == self.EXPECTED

    def test_each_line_carries_severity_scope_and_description(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        for line in lines:
            fields = line.split(maxsplit=3)
            assert fields[1] in ("error", "warning")
            assert fields[2] in ("module", "project")
            assert fields[3]


class TestBaselineFlags:
    def test_write_baseline_then_gate_is_green(self, tree, capsys):
        root = tree(DIRTY)
        assert main(["lint", "--write-baseline", "repro"]) == 0
        assert "baseline written" in capsys.readouterr().out
        payload = json.loads((root / "lint-baseline.json").read_text())
        assert payload["schema"] == BASELINE_SCHEMA
        assert len(payload["entries"]) == 1
        # The default baseline in the working directory now grandfathers it.
        assert main(["lint", "repro"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_ignores_the_default_file(self, tree, capsys):
        tree(DIRTY)
        assert main(["lint", "--write-baseline", "repro"]) == 0
        capsys.readouterr()
        assert main(["lint", "--no-baseline", "repro"]) == 1

    def test_explicit_baseline_path(self, tree, capsys):
        tree(DIRTY)
        assert main(["lint", "--write-baseline", "--baseline", "b.json",
                     "repro"]) == 0
        capsys.readouterr()
        assert main(["lint", "--baseline", "b.json", "repro"]) == 0
        assert "1 baselined" in capsys.readouterr().out


class TestCIGate:
    def test_ci_invocation_fails_on_a_non_baselined_finding(self, tree, capsys):
        """The exact gate CI runs: --json artifact + non-zero on findings."""
        root = tree(DIRTY)
        assert main(["lint", "--json", "lint-report.json", "repro"]) == 1
        payload = json.loads((root / "lint-report.json").read_text())
        assert payload["result"]["counts"]["active"] == 1
        capsys.readouterr()
        # Fixing the violation (here: suppressing with a justification)
        # turns the same invocation green.
        timed = root / "repro/engine/timed.py"
        timed.write_text(timed.read_text().replace(
            "time.time()",
            "time.time()  # repro-lint: disable=determinism -- fixture"))
        assert main(["lint", "--json", "lint-report.json", "repro"]) == 0
        payload = json.loads((root / "lint-report.json").read_text())
        assert payload["result"]["counts"] == {
            "active": 0, "suppressed": 1, "baselined": 0}
