"""The project-scoped rules: lock-order, taint-determinism, schema-drift.

Each rule gets a good/bad fixture pair built from the same tree shape — the
bad tree seeds exactly the violation the rule exists to catch (a two-lock
cycle split across modules, a helper-laundered ``time.time()`` reaching a
fingerprint sink, a dataclass field added without a schema bump) and the good
tree is the minimal fix.  Rules run through :func:`run_lint` with
``project_mode=True``, exactly as ``repro lint --project`` invokes them.
"""

import textwrap

import pytest

from repro.lint import run_lint
from repro.lint.framework import analyze_project
from repro.lint.rules.schema_drift import surface_payload


def dedent_tree(files):
    """Dedent fixture sources up front so tests can edit them in place
    (make_tree's own dedent then no-ops)."""
    return {rel: textwrap.dedent(source) for rel, source in files.items()}


@pytest.fixture
def lint_project(make_tree):
    """Build a fixture tree and lint it in project mode (no cache)."""

    def run(files, rules=None, surface_doc=None):
        root = make_tree(files)
        return run_lint([root / "repro"], rule_ids=rules,
                        project_mode=True, surface_doc=surface_doc,
                        surface_path="api-surface.json" if surface_doc else None)

    return run


def findings_for(report, rule):
    return [finding for finding in report.findings if finding.rule == rule]


class TestLockOrder:
    CYCLE_BAD = dedent_tree({
        "repro/store/a.py": """\
            import threading

            from repro.store.b import flush

            LOCK_A = threading.Lock()

            def update():
                with LOCK_A:
                    flush()
            """,
        "repro/store/b.py": """\
            import threading

            from repro.store.a import update

            LOCK_B = threading.Lock()

            def flush():
                with LOCK_B:
                    pass

            def drain():
                with LOCK_B:
                    update()
            """,
    })

    def test_cross_module_two_lock_cycle_is_a_deadlock_finding(
            self, lint_project):
        report = lint_project(self.CYCLE_BAD, rules=["lock-order"])
        (finding,) = findings_for(report, "lock-order")
        assert "potential deadlock" in finding.message
        assert "repro.store.a:LOCK_A" in finding.message
        assert "repro.store.b:LOCK_B" in finding.message
        assert finding.scope.value == "project"

    def test_consistent_order_is_clean(self, lint_project):
        good = dict(self.CYCLE_BAD)
        # The fix: drain() calls the already-ordered flush() instead of
        # re-entering a.update() while holding LOCK_B.
        good["repro/store/b.py"] = good["repro/store/b.py"].replace(
            "        update()", "        pass")
        report = lint_project(good, rules=["lock-order"])
        assert findings_for(report, "lock-order") == []

    def test_blocking_io_reached_under_a_held_lock(self, lint_project):
        report = lint_project({
            "repro/store/srv.py": """\
                import threading
                import time

                LOCK = threading.Lock()

                def helper():
                    time.sleep(0.1)

                def handle():
                    with LOCK:
                        helper()
                """,
        }, rules=["lock-order"])
        (finding,) = findings_for(report, "lock-order")
        assert "time.sleep" in finding.message
        assert "repro.store.srv:LOCK" in finding.message
        # The witness chain names the laundering hop.
        assert "repro.store.srv:helper" in finding.message

    def test_blocking_io_outside_any_lock_is_fine(self, lint_project):
        report = lint_project({
            "repro/store/srv.py": """\
                import threading
                import time

                LOCK = threading.Lock()

                def handle():
                    with LOCK:
                        pass
                    time.sleep(0.1)
                """,
        }, rules=["lock-order"])
        assert findings_for(report, "lock-order") == []


class TestTaintDeterminism:
    #: Stub sinks: the rule resolves them by module:function name, so the
    #: fixture replicates the real repro.store.keys entry points.
    KEYS = textwrap.dedent("""\
        import hashlib
        import json

        def canonical_json(payload):
            return json.dumps(payload, sort_keys=True)

        def fingerprint_of(payload):
            digest = hashlib.sha256(canonical_json(payload).encode())
            return digest.hexdigest()
        """)

    LAUNDERED_BAD = dedent_tree({
        "repro/store/keys.py": KEYS,
        "repro/util/stamp.py": """\
            import time

            def build_stamp():
                return time.time()
            """,
        "repro/store/record.py": """\
            from repro.store.keys import fingerprint_of
            from repro.util.stamp import build_stamp

            def record_key(spec):
                payload = {"spec": spec, "stamp": build_stamp()}
                return fingerprint_of(payload)
            """,
    })

    def test_helper_laundered_wall_clock_reaches_the_fingerprint(
            self, lint_project):
        report = lint_project(self.LAUNDERED_BAD, rules=["taint-determinism"])
        (finding,) = findings_for(report, "taint-determinism")
        assert "time.time" in finding.message
        assert "repro.store.keys:fingerprint_of" in finding.message
        assert "laundered through repro.util.stamp:build_stamp" \
            in finding.message
        assert finding.path.endswith("repro/store/record.py")

    def test_deterministic_helper_is_clean(self, lint_project):
        good = dict(self.LAUNDERED_BAD)
        good["repro/util/stamp.py"] = """\
            def build_stamp():
                return "v1"
            """
        report = lint_project(good, rules=["taint-determinism"])
        assert findings_for(report, "taint-determinism") == []

    def test_direct_source_in_the_sink_argument(self, lint_project):
        report = lint_project({
            "repro/store/keys.py": self.KEYS,
            "repro/store/record.py": """\
                import os

                from repro.store.keys import canonical_json

                def dump(spec):
                    return canonical_json({"spec": spec,
                                           "nonce": os.urandom(8).hex()})
                """,
        }, rules=["taint-determinism"])
        (finding,) = findings_for(report, "taint-determinism")
        assert "os.urandom" in finding.message
        assert "laundered" not in finding.message

    def test_taint_does_not_leak_into_unrelated_calls(self, lint_project):
        # The nondeterministic value exists but never feeds a sink argument.
        report = lint_project({
            "repro/store/keys.py": self.KEYS,
            "repro/store/record.py": """\
                import time

                from repro.store.keys import fingerprint_of

                def record_key(spec):
                    started = time.time()
                    key = fingerprint_of({"spec": spec})
                    _ = time.time() - started
                    return key
                """,
        }, rules=["taint-determinism"])
        assert findings_for(report, "taint-determinism") == []


class TestSchemaDrift:
    TREE = dedent_tree({
        "repro/store/disk.py": """\
            from dataclasses import dataclass

            RECORD_SCHEMA = "repro.store.record/v1"

            @dataclass
            class Record:
                fingerprint: str
                payload: dict

            def manifest(record):
                return {"schema": RECORD_SCHEMA,
                        "fingerprint": record.fingerprint,
                        "payload": record.payload}
            """,
    })

    def surface_for(self, make_tree, files):
        root = make_tree(files)
        return surface_payload(analyze_project([root / "repro"]))

    def test_surface_records_envelopes_and_dataclasses(self, make_tree):
        doc = self.surface_for(make_tree, self.TREE)
        assert doc["schema"] == "repro.api-surface/v1"
        entries = {entry["id"]: entry for entry in doc["entries"]}
        assert entries["repro.store.disk:Record"]["kind"] == "dataclass"
        assert entries["repro.store.disk:Record"]["fields"] == [
            "fingerprint", "payload"]
        envelope = entries["repro.store.disk:manifest"]
        assert envelope["kind"] == "envelope"
        assert envelope["fields"] == ["fingerprint", "payload", "schema"]
        assert envelope["constants"] == {
            "repro.store.disk:RECORD_SCHEMA": "repro.store.record/v1"}

    def test_matching_surface_is_clean(self, make_tree, lint_project):
        doc = self.surface_for(make_tree, self.TREE)
        report = lint_project(self.TREE, rules=["schema-drift"],
                              surface_doc=doc)
        assert findings_for(report, "schema-drift") == []

    def test_field_added_without_a_version_bump_is_an_error(
            self, make_tree, lint_project):
        doc = self.surface_for(make_tree, self.TREE)
        drifted = dict(self.TREE)
        drifted["repro/store/disk.py"] = drifted[
            "repro/store/disk.py"].replace(
            "    payload: dict", "    payload: dict\n    created: str")
        report = lint_project(drifted, rules=["schema-drift"],
                              surface_doc=doc)
        (finding,) = findings_for(report, "schema-drift")
        assert "did not bump" in finding.message
        assert "added created" in finding.message
        assert "repro.store.disk:Record" in finding.message

    def test_field_added_with_a_bump_requires_rerecording_only(
            self, make_tree, lint_project):
        doc = self.surface_for(make_tree, self.TREE)
        bumped = dict(self.TREE)
        bumped["repro/store/disk.py"] = (
            bumped["repro/store/disk.py"]
            .replace("repro.store.record/v1", "repro.store.record/v2")
            .replace("    payload: dict", "    payload: dict\n    created: str"))
        report = lint_project(bumped, rules=["schema-drift"],
                              surface_doc=doc)
        findings = findings_for(report, "schema-drift")
        assert findings, "stale surface must still fail the scan"
        assert all("--write-surface" in finding.message
                   for finding in findings)
        assert not any("did not bump" in finding.message
                       for finding in findings)

    def test_missing_surface_file_is_reported_once(self, lint_project):
        report = lint_project(self.TREE, rules=["schema-drift"],
                              surface_doc=None)
        (finding,) = findings_for(report, "schema-drift")
        assert "no schema surface is recorded" in finding.message

    def test_removed_entry_anchors_at_the_surface_file(
            self, make_tree, lint_project):
        doc = self.surface_for(make_tree, self.TREE)
        gone = {"repro/store/disk.py": "RECORD_SCHEMA = 'x'\n"}
        report = lint_project(gone, rules=["schema-drift"], surface_doc=doc)
        assert any("no longer exists" in finding.message
                   for finding in findings_for(report, "schema-drift"))
