"""Framework semantics: module naming, syntax findings, suppressions,
baseline matching, and the report payload."""

from pathlib import Path

import pytest

from repro.lint import (
    BASELINE_SCHEMA,
    Finding,
    Severity,
    baseline_payload,
    load_baseline,
    run_lint,
)
from repro.lint.baseline import dump_baseline
from repro.lint.framework import discover_files, module_name_for

BAD_ENGINE = """\
    import time

    def stamp():
        return time.time()
    """


class TestModuleNaming:
    def test_dotted_name_from_last_repro_component(self):
        assert module_name_for(
            Path("src/repro/engine/runner.py")) == "repro.engine.runner"

    def test_package_init_names_the_package(self):
        assert module_name_for(
            Path("src/repro/store/__init__.py")) == "repro.store"

    def test_file_outside_a_repro_tree_falls_back_to_its_stem(self):
        assert module_name_for(Path("scripts/helper.py")) == "helper"


class TestDiscovery:
    def test_missing_path_is_a_usage_error(self):
        with pytest.raises(ValueError, match="does not exist"):
            discover_files(["no/such/dir"])

    def test_pycache_is_skipped_and_listing_is_sorted(self, make_tree):
        root = make_tree({
            "repro/b.py": "",
            "repro/a.py": "",
            "repro/__pycache__/a.cpython-311.py": "",
        })
        names = [path.name for path in discover_files([root / "repro"])]
        assert names == ["a.py", "b.py"]


class TestSyntaxRule:
    def test_unparseable_file_reports_syntax_instead_of_crashing(self, lint_tree):
        report = lint_tree({"repro/engine/broken.py": "def oops(:\n"})
        assert [f.rule for f in report.findings] == ["syntax"]
        assert "does not parse" in report.findings[0].message


class TestSuppressions:
    def test_justified_suppression_hides_the_finding(self, lint_tree):
        report = lint_tree({"repro/engine/timed.py": """\
            import time

            def stamp():
                return time.time()  # repro-lint: disable=determinism -- test fixture
            """})
        assert report.clean
        assert report.suppressed == 1

    def test_unjustified_suppression_is_its_own_finding(self, lint_tree):
        report = lint_tree({"repro/engine/timed.py": """\
            import time

            def stamp():
                return time.time()  # repro-lint: disable=determinism
            """})
        # The determinism finding is still suppressed, but hygiene flags the
        # missing justification.
        assert report.suppressed == 1
        assert [f.rule for f in report.findings] == ["suppression"]
        assert "justification" in report.findings[0].message

    def test_unknown_rule_id_is_flagged(self, lint_tree):
        report = lint_tree({"repro/engine/ok.py": """\
            x = 1  # repro-lint: disable=not-a-rule -- because
            """})
        messages = [f.message for f in report.findings]
        assert any("unknown rule 'not-a-rule'" in m for m in messages)

    def test_unused_suppression_is_flagged_on_a_full_run(self, lint_tree):
        report = lint_tree({"repro/engine/ok.py": """\
            x = 1  # repro-lint: disable=determinism -- stale
            """})
        assert [f.rule for f in report.findings] == ["suppression"]
        assert "matched no finding" in report.findings[0].message

    def test_unused_marker_is_not_stale_under_a_rule_filter(self, lint_tree):
        # With --rule the unrun rule's marker cannot be judged unused.
        report = lint_tree({"repro/engine/ok.py": """\
            x = 1  # repro-lint: disable=determinism -- stale
            """}, rules=["hot-path"])
        assert report.clean

    def test_suppression_only_covers_the_named_rule(self, lint_tree):
        report = lint_tree({"repro/engine/timed.py": """\
            import time

            def stamp():
                return time.time()  # repro-lint: disable=hot-path -- wrong rule
            """})
        rules = sorted(f.rule for f in report.findings)
        # The determinism finding survives and the marker is unused.
        assert rules == ["determinism", "suppression"]


class TestBaseline:
    def test_baselined_finding_is_counted_but_not_active(self, lint_tree, tmp_path):
        first = lint_tree({"repro/engine/timed.py": BAD_ENGINE})
        assert len(first.findings) == 1
        path = tmp_path / "baseline.json"
        dump_baseline(first.findings, path)
        second = run_lint([tmp_path / "repro"], baseline=load_baseline(path))
        assert second.clean
        assert second.baselined == 1

    def test_baseline_matches_without_line_numbers(self, make_tree, tmp_path):
        root = make_tree({"repro/engine/timed.py": BAD_ENGINE})
        first = run_lint([root / "repro"])
        baseline_file = tmp_path / "baseline.json"
        dump_baseline(first.findings, baseline_file)
        # Shift the finding to a different line; the entry must still match.
        source = (root / "repro/engine/timed.py").read_text()
        (root / "repro/engine/timed.py").write_text("\n\n\n" + source)
        moved = run_lint([root / "repro"])
        assert not run_lint(
            [root / "repro"], baseline=load_baseline(baseline_file)).findings
        assert moved.findings[0].line == first.findings[0].line + 3

    def test_stale_baseline_entry_does_not_hide_new_findings(self, lint_tree):
        stale = {("determinism", "repro/engine/gone.py", "old message")}
        report = lint_tree({"repro/engine/timed.py": BAD_ENGINE}, baseline=stale)
        assert len(report.findings) == 1
        assert report.baselined == 0

    def test_payload_sorts_and_dedupes_entries(self):
        finding = Finding(rule="hot-path", severity=Severity.WARNING,
                          path="a.py", line=3, col=1, message="m")
        shifted = Finding(rule="hot-path", severity=Severity.WARNING,
                          path="a.py", line=9, col=1, message="m")
        payload = baseline_payload([shifted, finding])
        assert payload["schema"] == BASELINE_SCHEMA
        assert payload["entries"] == [
            {"rule": "hot-path", "path": "a.py", "message": "m"}]

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": "other/v1", "entries": []}')
        with pytest.raises(ValueError, match="baseline"):
            load_baseline(path)


class TestReport:
    def test_full_run_lists_every_registered_rule(self, lint_tree):
        report = lint_tree({"repro/engine/ok.py": "x = 1\n"})
        assert report.rules == sorted(report.rules)
        for rule_id in ("determinism", "fingerprint-coverage", "thread-safety",
                        "backend-parity", "hot-path", "syntax", "suppression"):
            assert rule_id in report.rules

    def test_filtered_run_lists_only_the_selected_rules(self, lint_tree):
        report = lint_tree({"repro/engine/ok.py": "x = 1\n"},
                           rules=["determinism"])
        assert report.rules == ["determinism"]

    def test_payload_counts_and_findings_shape(self, lint_tree):
        report = lint_tree({"repro/engine/timed.py": BAD_ENGINE})
        payload = report.to_payload()
        assert payload["counts"] == {
            "active": 1, "suppressed": 0, "baselined": 0}
        (entry,) = payload["findings"]
        assert entry["rule"] == "determinism"
        assert entry["severity"] == "error"
        assert entry["path"].endswith("repro/engine/timed.py")
        assert entry["line"] == 4

    def test_findings_sort_by_location(self, lint_tree):
        report = lint_tree({
            "repro/engine/b.py": BAD_ENGINE,
            "repro/engine/a.py": BAD_ENGINE,
        })
        assert [f.path for f in report.findings] == sorted(
            f.path for f in report.findings)
