"""Shared fixtures for the lint suite: tiny on-disk source trees.

The rules scope on dotted module names derived from the path (everything from
the last ``repro`` component), so fixtures replicate the ``repro/...`` layout
under ``tmp_path`` and scan the tree exactly like the CLI scans ``src/``.
"""

import textwrap

import pytest

from repro.lint import run_lint


@pytest.fixture
def make_tree(tmp_path):
    """Write ``{relative_path: source}`` files under ``tmp_path``; returns it."""

    def build(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source), encoding="utf-8")
        return tmp_path

    return build


@pytest.fixture
def lint_tree(make_tree):
    """Build a fixture tree and lint it; returns the report.

    ``rules=None`` runs the full set (including suppression hygiene);
    passing rule ids restricts the run like ``--rule`` does.
    """

    def run(files, rules=None, baseline=None):
        root = make_tree(files)
        return run_lint([root / "repro"], rule_ids=rules, baseline=baseline)

    return run
