"""Tests for the TAGE, Perceptron and composite predictor models."""

import pytest

from repro.bpu.common import PredictorStats
from repro.bpu.composite import make_skl_composite
from repro.bpu.history import HistoryState
from repro.bpu.perceptron import PerceptronConfig, PerceptronPredictor
from repro.bpu.protections import (
    make_conservative,
    make_ucode_protection_1,
    make_ucode_protection_2,
    make_unprotected_baseline,
)
from repro.bpu.tage import TAGE_SC_L_8KB, TAGE_SC_L_64KB, TAGEConfig, TAGEPredictor
from repro.trace.branch import BranchRecord, BranchType, PrivilegeMode


def _run_direction(predictor, outcome_fn, ip=0x40_0100, steps=800):
    history = HistoryState()
    correct = 0
    for step in range(steps):
        taken = outcome_fn(step)
        prediction = predictor.predict(ip, history)
        if prediction.taken == taken:
            correct += 1
        predictor.update(prediction, taken, ip=ip)
        history.record_conditional(taken)
    return correct / steps


class TestTAGE:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TAGEConfig(name="bad", bimodal_entries=16,
                       tagged_table_entries=(16, 16), tag_bits=(8,), history_lengths=(4, 8))

    def test_learns_bias(self):
        assert _run_direction(TAGEPredictor(TAGE_SC_L_8KB), lambda i: True) > 0.97

    def test_learns_long_pattern(self):
        pattern = [True, True, False, True, False, False, True, False]
        accuracy = _run_direction(TAGEPredictor(TAGE_SC_L_64KB),
                                  lambda i: pattern[i % len(pattern)], steps=1200)
        assert accuracy > 0.9

    def test_loop_predictor_catches_fixed_trip_count(self):
        predictor = TAGEPredictor(TAGE_SC_L_64KB)
        # 7 taken iterations then one not-taken exit, repeatedly.
        accuracy = _run_direction(predictor, lambda i: (i % 8) != 7, steps=1600)
        assert accuracy > 0.9

    def test_flush_resets_learning(self):
        predictor = TAGEPredictor(TAGE_SC_L_8KB)
        _run_direction(predictor, lambda i: True, steps=200)
        predictor.flush()
        history = HistoryState()
        first = predictor.predict(0x40_0100, history)
        # After a flush the bimodal base is back to weakly not-taken.
        assert first.provider_table is None

    def test_8kb_and_64kb_have_expected_relative_capacity(self):
        assert sum(TAGE_SC_L_64KB.tagged_table_entries) > sum(TAGE_SC_L_8KB.tagged_table_entries)
        assert max(TAGE_SC_L_64KB.history_lengths) > max(TAGE_SC_L_8KB.history_lengths)


class TestPerceptron:
    def test_learns_bias(self):
        assert _run_direction(PerceptronPredictor(), lambda i: True) > 0.97

    def test_learns_linearly_separable_pattern_with_noise_history(self):
        pattern = [True, False, False, True]
        accuracy = _run_direction(PerceptronPredictor(),
                                  lambda i: pattern[i % len(pattern)], steps=1000)
        assert accuracy > 0.9

    def test_threshold_follows_history_length(self):
        short = PerceptronConfig(history_length=16)
        long = PerceptronConfig(history_length=64)
        assert long.threshold > short.threshold

    def test_weights_saturate(self):
        config = PerceptronConfig(weight_bits=4, history_length=8)
        predictor = PerceptronPredictor(config)
        _run_direction(predictor, lambda i: True, steps=500)
        limit = config.weight_limit
        for row in predictor._weights:
            assert all(-limit - 1 <= w <= limit for w in row)


def _conditional(ip, taken, ctx=0):
    target = ip + 0x100 if taken else ip + 4
    return BranchRecord(ip=ip, target=target, taken=taken,
                        branch_type=BranchType.CONDITIONAL, context_id=ctx)


class TestCompositeBPU:
    def test_direct_jump_learns_target(self):
        model = make_skl_composite()
        branch = BranchRecord(ip=0x40_0000, target=0x41_0000, taken=True,
                              branch_type=BranchType.DIRECT_JUMP)
        first = model.access_with_events(branch)
        second = model.access_with_events(branch)
        assert not first.effective_correct
        assert second.effective_correct and second.btb_hit

    def test_oae_requires_both_direction_and_target(self):
        model = make_skl_composite()
        branch = _conditional(0x40_0200, True)
        # Train direction until predicted taken, but with a cold BTB the first
        # taken prediction cannot supply the target.
        result = None
        for _ in range(8):
            result = model.access_with_events(branch)
        assert result.direction_correct
        assert result.effective_correct  # by now both direction and target are warm

    def test_return_uses_rsb(self):
        model = make_skl_composite()
        call = BranchRecord(ip=0x40_0300, target=0x42_0000, taken=True,
                            branch_type=BranchType.DIRECT_CALL)
        model.access_with_events(call)
        ret = BranchRecord(ip=0x42_0040, target=call.fall_through, taken=True,
                           branch_type=BranchType.RETURN)
        result = model.access_with_events(ret)
        assert result.prediction.source == "rsb"
        assert result.effective_correct

    def test_rsb_underflow_falls_back(self):
        model = make_skl_composite()
        ret = BranchRecord(ip=0x42_0040, target=0x40_0304, taken=True,
                           branch_type=BranchType.RETURN)
        result = model.access_with_events(ret)
        assert result.rsb_underflow

    def test_flush_loses_btb_state(self):
        model = make_skl_composite()
        branch = BranchRecord(ip=0x40_0000, target=0x41_0000, taken=True,
                              branch_type=BranchType.DIRECT_JUMP)
        model.access_with_events(branch)
        model.flush_predictor_state()
        again = model.access_with_events(branch)
        assert not again.btb_hit

    def test_stats_accumulate(self, small_mcf_trace):
        model = make_skl_composite()
        stats = PredictorStats()
        for branch in small_mcf_trace.branches():
            stats.record(model.access_with_events(branch), branch)
        assert stats.branches == small_mcf_trace.branch_count
        assert 0.0 < stats.oae_accuracy < 1.0
        assert stats.direction_predictions == stats.conditional_branches


class TestProtections:
    def test_flushing_counts_flushes(self):
        model = make_ucode_protection_1()
        model.on_context_switch(1)
        model.on_context_switch(2)
        model.on_mode_switch(PrivilegeMode.KERNEL, 2)
        assert model.flush_count == 2  # second context switch + kernel entry

    def test_ucode2_does_not_segment_btb(self):
        p1 = make_ucode_protection_1()
        p2 = make_ucode_protection_2()
        assert p1.inner.btb.set_count < p2.inner.btb.set_count

    def test_conservative_isolates_contexts(self):
        model = make_conservative()
        branch_a = BranchRecord(ip=0x40_0000, target=0x41_0000, taken=True,
                                branch_type=BranchType.DIRECT_JUMP, context_id=0)
        model.access(branch_a)
        model.access(branch_a)
        # The same branch address executed by another context must not reuse
        # the entry (partitioned structures).
        branch_b = branch_a.with_context(1)
        result = model.access(branch_b)
        assert not result.btb_hit

    def test_unprotected_baseline_shares_across_contexts(self):
        model = make_unprotected_baseline()
        branch_a = BranchRecord(ip=0x40_0000, target=0x41_0000, taken=True,
                                branch_type=BranchType.DIRECT_JUMP, context_id=0)
        model.access_with_events(branch_a)
        result = model.access_with_events(branch_a.with_context(1))
        assert result.btb_hit
