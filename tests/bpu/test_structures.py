"""Tests for the individual BPU structures: BTB, PHT, RSB, history registers."""

import pytest

from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.common import StructureSizes, fold_bits
from repro.bpu.history import BranchHistoryBuffer, FoldedHistory, GlobalHistoryRegister, HistoryState
from repro.bpu.mapping import BaselineMappingProvider, FullAddressMappingProvider, IdentityTargetCodec
from repro.bpu.pht import PatternHistoryTable, SaturatingCounter, SKLConditionalPredictor
from repro.bpu.rsb import ReturnStackBuffer


class TestFoldBits:
    def test_folds_within_range(self):
        assert fold_bits(0xFFFF_FFFF, 32, 8) < 256

    def test_identity_when_already_narrow(self):
        assert fold_bits(0x3A, 8, 8) == 0x3A

    def test_rejects_non_positive_output(self):
        with pytest.raises(ValueError):
            fold_bits(1, 8, 0)


class TestStructureSizes:
    def test_skylake_defaults(self):
        sizes = StructureSizes()
        assert sizes.btb_entries == 4096
        assert sizes.btb_index_bits == 9
        assert sizes.pht_index_bits == 14
        assert sizes.rsb_entries == 16


class TestBTB:
    def test_miss_then_hit_after_update(self):
        btb = BranchTargetBuffer()
        assert not btb.lookup(0x40_0000).hit
        btb.update(0x40_0000, 0x41_0000)
        result = btb.lookup(0x40_0000)
        assert result.hit
        assert result.predicted_target == 0x41_0000

    def test_target_extension_uses_branch_upper_bits(self):
        btb = BranchTargetBuffer()
        ip = 0x7FFF_0040_0000
        target = 0x7FFF_0041_2345
        btb.update(ip, target)
        assert btb.lookup(ip).predicted_target == target

    def test_lru_eviction_within_a_set(self):
        sizes = StructureSizes()
        btb = BranchTargetBuffer(sizes)
        base = 0x40_0000
        stride = sizes.btb_sets << sizes.btb_offset_bits  # same index, different tag
        installed = [base + way * stride for way in range(sizes.btb_ways + 1)]
        for address in installed:
            btb.update(address, address + 0x100)
        assert btb.eviction_count >= 1
        # The first-installed (least recently used) entry was the victim.
        assert not btb.contains(installed[0])
        assert btb.contains(installed[-1])

    def test_flush_drops_all_entries(self):
        btb = BranchTargetBuffer()
        for index in range(50):
            btb.update(0x40_0000 + index * 64, 0x50_0000)
        dropped = btb.flush()
        assert dropped == 50
        assert btb.valid_entry_count() == 0

    def test_mode2_separates_contexts_by_history(self):
        btb = BranchTargetBuffer()
        btb.update(0x40_0000, 0x50_0000, bhb=0x123)
        assert btb.lookup(0x40_0000, bhb=0x123).hit
        assert not btb.lookup(0x40_0000, bhb=0x456).hit

    def test_capacity_scale_halves_sets(self):
        full = BranchTargetBuffer()
        half = BranchTargetBuffer(capacity_scale=0.5)
        assert half.set_count == full.set_count // 2
        with pytest.raises(ValueError):
            BranchTargetBuffer(capacity_scale=0.0)

    def test_update_same_branch_refreshes_without_eviction(self):
        btb = BranchTargetBuffer()
        btb.update(0x40_0000, 0x50_0000)
        result = btb.update(0x40_0000, 0x60_0000)
        assert result.replaced_same_branch
        assert not result.evicted_valid_entry
        assert btb.lookup(0x40_0000).predicted_target == 0x60_0000


class TestSaturatingCounterAndPHT:
    def test_counter_saturates_at_bounds(self):
        counter = SaturatingCounter(bits=2, value=0)
        for _ in range(10):
            counter.update(True)
        assert counter.value == 3 and counter.taken
        for _ in range(10):
            counter.update(False)
        assert counter.value == 0 and not counter.taken

    def test_pht_learns_direction(self):
        pht = PatternHistoryTable(entries=16)
        for _ in range(4):
            pht.update(5, True)
        assert pht.predict(5)
        assert not pht.predict(6) or pht.counter_value(6) <= 1

    def test_pht_rejects_bad_size(self):
        with pytest.raises(ValueError):
            PatternHistoryTable(entries=0)

    def test_skl_predictor_learns_biased_branch(self):
        predictor = SKLConditionalPredictor()
        history = HistoryState()
        correct = 0
        for step in range(400):
            taken = True
            prediction = predictor.predict(0x1234, history)
            if prediction.taken == taken:
                correct += 1
            predictor.update(prediction, taken)
            history.record_conditional(taken)
        assert correct / 400 > 0.95

    def test_skl_predictor_learns_alternation(self):
        predictor = SKLConditionalPredictor()
        history = HistoryState()
        correct = 0
        for step in range(600):
            taken = step % 2 == 0
            prediction = predictor.predict(0x5678, history)
            if prediction.taken == taken:
                correct += 1
            predictor.update(prediction, taken)
            history.record_conditional(taken)
        assert correct / 600 > 0.9


class TestRSB:
    def test_lifo_order(self):
        rsb = ReturnStackBuffer(entries=4)
        rsb.push(0x100)
        rsb.push(0x200)
        assert rsb.pop(0x500).predicted_target == 0x200
        assert rsb.pop(0x500).predicted_target == 0x100

    def test_underflow_reported(self):
        rsb = ReturnStackBuffer(entries=4)
        result = rsb.pop(0x500)
        assert result.underflow
        assert result.predicted_target is None
        assert rsb.underflow_count == 1

    def test_overflow_drops_oldest(self):
        rsb = ReturnStackBuffer(entries=2)
        rsb.push(0x1)
        rsb.push(0x2)
        rsb.push(0x3)
        assert rsb.overflow_count == 1
        assert rsb.pop(0).predicted_target == 0x3
        assert rsb.pop(0).predicted_target == 0x2
        assert rsb.pop(0).underflow

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            ReturnStackBuffer(entries=0)


class TestHistoryRegisters:
    def test_ghr_shifts_and_masks(self):
        ghr = GlobalHistoryRegister(bits=4)
        for taken in (True, False, True, True):
            ghr.push(taken)
        assert ghr.snapshot() == 0b1011
        ghr.push(True)
        assert ghr.snapshot() == 0b0111

    def test_bhb_changes_with_path(self):
        a = BranchHistoryBuffer()
        b = BranchHistoryBuffer()
        a.push(0x1000, 0x2000)
        b.push(0x1000, 0x2004)
        assert a.snapshot() != b.snapshot()

    def test_folded_history_bounded(self):
        fold = FoldedHistory(history_length=64, folded_bits=10)
        outcomes = [bool(i % 3) for i in range(200)]
        assert fold.fold(outcomes) < (1 << 10)

    def test_history_state_clear(self):
        state = HistoryState()
        state.record_conditional(True)
        state.record_taken_branch(0x10, 0x20)
        state.clear()
        assert state.ghr.snapshot() == 0
        assert state.bhb.snapshot() == 0
        assert not state.outcomes


class TestMappingProviders:
    def test_baseline_truncation_allows_aliasing(self):
        mapping = BaselineMappingProvider()
        key_low = mapping.btb_mode1(0x0000_1234_5678)
        key_aliased = mapping.btb_mode1(0x0001_1234_5678)  # differs only above bit 31
        assert key_low == key_aliased

    def test_full_address_provider_distinguishes_aliases(self):
        mapping = FullAddressMappingProvider()
        assert mapping.btb_mode1(0x0000_1234_5678) != mapping.btb_mode1(0x0001_1234_5678)

    def test_pht_indexes_within_range(self):
        mapping = BaselineMappingProvider()
        sizes = mapping.sizes
        for ip in (0x400000, 0x7FFF_FFFF_FFFF, 0x12345678):
            assert 0 <= mapping.pht_index_1level(ip) < sizes.pht_entries
            assert 0 <= mapping.pht_index_2level(ip, 0x3FFFF) < sizes.pht_entries

    def test_identity_codec_roundtrip_and_extend(self):
        codec = IdentityTargetCodec()
        assert codec.decode(codec.encode(0x1234_5678)) == 0x1234_5678
        extended = codec.extend(0x0041_2345, ip=0x7FFF_0040_0000)
        assert extended == 0x7FFF_0041_2345
