"""Tests for the declarative experiment-spec API and the streaming runner."""

import json

import pytest

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    ExperimentSpec,
    SimulationGrid,
    experiment_spec,
    list_experiments,
    run_experiment,
)

#: Every subcommand of the pre-spec CLI; each must resolve to a spec.
LEGACY_COMMANDS = (
    "figure2", "figure3", "figure4", "figure5", "figure6",
    "tables", "ablation", "attacks", "bench",
    "list-models", "list-workloads",
)

_SMALL_SCALE = ExperimentScale(branch_count=1_500, warmup_branches=150, seed=13)


class TestRegistryCompleteness:
    def test_every_legacy_command_resolves_to_a_spec(self):
        registered = {spec.name for spec in list_experiments()}
        for command in LEGACY_COMMANDS:
            assert command in registered

    def test_unknown_experiment_raises_with_known_names(self):
        with pytest.raises(KeyError, match="registered experiments"):
            experiment_spec("no-such-experiment")

    def test_specs_declare_versioned_schemas(self):
        for spec in list_experiments():
            assert spec.schema == f"repro.{spec.name}/v{spec.schema_version}"

    def test_spec_must_declare_exactly_one_execution_shape(self):
        with pytest.raises(ValueError, match="exactly one"):
            ExperimentSpec(name="broken", description="no builder at all")
        with pytest.raises(ValueError, match="without post_process"):
            ExperimentSpec(name="broken", description="half a grid spec",
                           build_jobs=lambda params: [])


class TestSeedDefaults:
    def test_per_experiment_default_seeds_live_in_the_spec(self):
        # The old CLI hard-coded these fallbacks inside its handlers.
        assert experiment_spec("figure2").default_seed == 0
        assert experiment_spec("attacks").default_seed == 7

    def test_merged_params_apply_the_default_seed(self):
        merged = experiment_spec("attacks").merged_params({})
        assert merged["seed"] == 7
        merged = experiment_spec("attacks").merged_params({"seed": 3})
        assert merged["seed"] == 3

    def test_merged_params_reject_unknown_keys(self):
        with pytest.raises(ValueError, match="does not accept parameter"):
            experiment_spec("figure3").merged_params({"bogus": 1})


class TestRunExperiment:
    def test_attacks_by_name_matches_the_legacy_driver(self):
        from repro.experiments.attacks import run_attack_matrix

        via_spec = run_experiment(
            "attacks", {"attacks": ["spectre_v2"], "models": ["baseline"]})
        legacy = run_attack_matrix(attacks=["spectre_v2"], models=["baseline"])
        assert via_spec.frame.to_json() == legacy.frame.to_json()

    def test_meta_experiments_execute_without_jobs(self):
        models = run_experiment("list-models")
        assert "ST_SKLCond" in models
        assert models["ST_SKLCond"] == "kernel"
        assert models["TAGE_SC_L_64KB"] == "guarded"
        assert models["PerceptronBP"] == "guarded"
        table = run_experiment("list-experiments")
        assert set(LEGACY_COMMANDS) <= set(table)

    def test_envelope_wraps_the_serialized_result(self):
        spec = experiment_spec("tables")
        result = run_experiment(spec)
        envelope = spec.serialize(result)
        assert set(envelope) == {"schema", "spec", "result"}
        assert envelope["schema"] == "repro.tables/v1"
        assert envelope["result"] is result  # dict result passes through


def _small_grid() -> SimulationGrid:
    return SimulationGrid(
        kind="trace",
        models=["baseline", "ST_SKLCond"],
        workloads=["505.mcf", "519.lbm"],
        scale=_SMALL_SCALE,
    )


class TestStreamingRunner:
    def test_iter_records_yields_the_same_frame_as_run(self):
        grid = _small_grid()
        streamed = list(EngineRunner(workers=1).iter_records(grid.jobs()))
        assert [record.index for record in streamed] == [0, 1, 2, 3]
        from repro.engine import ResultFrame

        assert ResultFrame(streamed).to_json() == EngineRunner().run(grid).to_json()

    def test_parallel_stream_is_reassembled_into_job_order(self):
        grid = _small_grid()
        serial = list(EngineRunner(workers=1).iter_records(grid.jobs()))
        parallel = list(EngineRunner(workers=2).iter_records(grid.jobs()))
        assert [record.index for record in parallel] == [0, 1, 2, 3]
        from repro.engine import ResultFrame

        assert ResultFrame(serial).to_json() == ResultFrame(parallel).to_json()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_progress_fires_once_per_job_in_completion_order(self, workers):
        grid = _small_grid()
        seen = []
        frame = EngineRunner(workers=workers).run(
            grid, progress=lambda done, total, record: seen.append((done, total)))
        assert seen == [(index + 1, len(frame)) for index in range(len(frame))]

    def test_records_carry_wall_time_but_never_serialize_it(self):
        grid = _small_grid()
        frame = EngineRunner().run(grid)
        for record in frame:
            assert record.seconds > 0.0
            assert "seconds" not in record.to_dict()


class TestCLIAliases:
    def test_run_experiment_alias_is_byte_identical(self, capsys, tmp_path):
        from repro.cli import main

        options = ["--workload-limit", "1", "--branches", "1200", "--warmup", "100"]
        direct_json = tmp_path / "direct.json"
        assert main(["figure3", *options, "--json", str(direct_json)]) == 0
        direct_out = capsys.readouterr().out
        aliased_json = tmp_path / "aliased.json"
        assert main(["run", "figure3", *options, "--json", str(aliased_json)]) == 0
        aliased_out = capsys.readouterr().out
        assert direct_out.replace(str(direct_json), "X") == \
            aliased_out.replace(str(aliased_json), "X")
        assert json.loads(direct_json.read_text()) == json.loads(aliased_json.read_text())

    def test_list_experiments_command(self, capsys):
        from repro.cli import main

        assert main(["list-experiments"]) == 0
        out = capsys.readouterr().out
        for command in LEGACY_COMMANDS:
            assert command in out

    def test_progress_streams_to_stderr_not_stdout(self, capsys):
        from repro.cli import main

        assert main(["figure3", "--workload-limit", "1", "--branches", "1200",
                     "--warmup", "100", "--progress"]) == 0
        captured = capsys.readouterr()
        assert "[5/5]" in captured.err
        assert "[5/5]" not in captured.out
