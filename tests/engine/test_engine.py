"""Tests for the unified simulation engine: registry, grid, runner, CLI."""

import json

import pytest

from repro.bpu.common import BranchPredictorModel
from repro.engine import (
    EngineRunner,
    ExperimentScale,
    Job,
    ModelSpec,
    SimulationGrid,
    build_model,
    derive_job_seed,
    execute_job,
    list_models,
    resolve_smt_pairs,
    resolve_workloads,
)


class TestRegistry:
    def test_every_registered_model_builds(self):
        for name in list_models():
            model = build_model(name, seed=3)
            assert isinstance(model, BranchPredictorModel)

    def test_unknown_model_raises_with_known_names(self):
        with pytest.raises(KeyError, match="registered models"):
            build_model("no-such-model")

    def test_spec_params_reach_the_factory(self):
        relaxed = build_model(ModelSpec.of("ST_SKLCond", r=0.05))
        aggressive = build_model(ModelSpec.of("ST_SKLCond", r=0.0005))
        assert (aggressive.monitor.config.misprediction_threshold
                < relaxed.monitor.config.misprediction_threshold)

    def test_display_label_defaults_to_name(self):
        assert ModelSpec.of("baseline").display_label == "baseline"
        assert ModelSpec.of("baseline", label="unprot").display_label == "unprot"

    def test_display_label_folds_params_in(self):
        # Two specs of one model with different knobs must occupy distinct
        # result-frame cells even when the caller forgets explicit labels.
        spec = ModelSpec.of("ST_SKLCond", r=0.0005)
        assert spec.display_label == "ST_SKLCond[r=0.0005]"
        assert spec.display_label != ModelSpec.of("ST_SKLCond", r=0.05).display_label


class TestWorkloadResolution:
    def test_categories_and_names(self):
        assert "505.mcf" in resolve_workloads(None)
        assert resolve_workloads("505.mcf") == ["505.mcf"]
        spec_only = resolve_workloads("spec")
        assert all(not name.startswith(("apache", "mysql", "chrome", "obs"))
                   for name in spec_only)

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError, match="known workloads"):
            resolve_workloads("not-a-workload")

    def test_smt_pair_syntax(self):
        assert resolve_smt_pairs("505.mcf+519.lbm") == [("505.mcf", "519.lbm")]
        assert len(resolve_smt_pairs(None)) == 31
        with pytest.raises(ValueError, match="workload_a\\+workload_b"):
            resolve_smt_pairs("505.mcf")


class TestGrid:
    def test_expansion_is_workload_major(self):
        grid = SimulationGrid(
            kind="trace",
            models=["baseline", "ST_SKLCond"],
            workloads=["505.mcf", "519.lbm"],
            scale=ExperimentScale(seed=5),
        )
        jobs = grid.jobs()
        assert [(job.workload, job.model.name) for job in jobs] == [
            ("505.mcf", "baseline"), ("505.mcf", "ST_SKLCond"),
            ("519.lbm", "baseline"), ("519.lbm", "ST_SKLCond"),
        ]
        assert [job.index for job in jobs] == [0, 1, 2, 3]
        assert all(job.seed == 5 for job in jobs)

    def test_workload_limit_truncates(self):
        grid = SimulationGrid(
            models=["baseline"],
            workloads=["505.mcf", "519.lbm", "541.leela"],
            scale=ExperimentScale(workload_limit=2),
        )
        assert len(grid.jobs()) == 2

    def test_per_job_seeds_are_deterministic_and_distinct(self):
        grid = SimulationGrid(
            models=["baseline", "ST_SKLCond"],
            workloads=["505.mcf", "519.lbm"],
            scale=ExperimentScale(seed=9),
            seed_policy="per-job",
        )
        seeds = [job.seed for job in grid.jobs()]
        assert len(set(seeds)) == len(seeds)
        assert seeds == [job.seed for job in grid.jobs()]
        assert derive_job_seed(9, "baseline", "505.mcf") == seeds[0]

    def test_rejects_unknown_kind_and_policy(self):
        with pytest.raises(ValueError, match="job kind"):
            SimulationGrid(kind="nope")
        with pytest.raises(ValueError, match="seed policy"):
            SimulationGrid(seed_policy="random")


_SMALL_SCALE = ExperimentScale(branch_count=1_500, warmup_branches=150, seed=13)


class TestRunner:
    def test_parallel_run_is_bit_identical_to_serial(self):
        grid = SimulationGrid(
            kind="trace",
            models=["baseline", "ucode_protection_1", "ST_SKLCond"],
            workloads=["505.mcf", "apache2_prefork_c128"],
            scale=_SMALL_SCALE,
        )
        serial = EngineRunner(workers=1).run(grid)
        parallel = EngineRunner(workers=2).run(grid)
        assert serial.to_json() == parallel.to_json()

    def test_smt_jobs_report_protection_counters(self):
        grid = SimulationGrid(
            kind="smt",
            models=[ModelSpec.of("ST_SKLCond")],
            workloads=[("505.mcf", "519.lbm")],
            scale=_SMALL_SCALE,
        )
        frame = EngineRunner().run(grid)
        record = frame.record("ST_SKLCond", "505.mcf+519.lbm")
        assert "rerandomizations" in record.metrics
        assert record.metrics["hmean_ipc"] > 0

    def test_frame_normalization_and_json_roundtrip(self):
        grid = SimulationGrid(
            kind="trace",
            models=["baseline", "ST_SKLCond"],
            workloads=["505.mcf"],
            scale=_SMALL_SCALE,
        )
        frame = EngineRunner().run(grid)
        normalized = frame.normalized("oae_accuracy", "baseline")
        assert normalized["505.mcf"]["baseline"] == pytest.approx(1.0)
        assert 0.8 < normalized["505.mcf"]["ST_SKLCond"] <= 1.1
        payload = json.loads(frame.to_json())
        assert len(payload["records"]) == 2

    def test_attack_job_runs_registry_model(self):
        job = Job(
            index=0, kind="attack", model=ModelSpec.of("baseline", label="unprot"),
            seed=3, params=(("attack", "spectre_v2"), ("attempts", 40)),
        )
        record = execute_job(job)
        assert record.workload == "spectre_v2"
        assert record.metrics["success_metric"] > 0.9
        assert record.metrics["protected"] == 0.0

    @pytest.mark.parametrize("attack,params", [
        ("spectre_rsb", (("attempts", 20),)),
        ("trojan", (("trials", 10),)),
        ("btb_reuse", (("trials", 20),)),
        ("pht_reuse", (("secret_bits", 16),)),
        ("btb_eviction", (("trials", 8),)),
        ("rsb_overflow", (("trials", 8),)),
        ("dos", (("rounds", 3), ("attacker_branches_per_round", 64),
                 ("hot_branch_count", 8))),
    ])
    def test_every_registered_attack_dispatches(self, attack, params):
        job = Job(
            index=0, kind="attack", model=ModelSpec.of("baseline", label="unprot"),
            seed=3, params=tuple(sorted((("attack", attack),) + params)),
        )
        record = execute_job(job)
        assert record.workload == attack
        for key in ("success_metric", "success", "attempts", "protected"):
            assert key in record.metrics

    def test_unknown_attack_name_is_rejected(self):
        job = Job(
            index=0, kind="attack", model=ModelSpec.of("baseline"),
            seed=3, params=(("attack", "nonexistent"),),
        )
        with pytest.raises(ValueError, match="unknown attack"):
            execute_job(job)

    def test_attack_matrix_scores_protection_schemes(self):
        from repro.engine import attack_names
        from repro.experiments.attacks import attack_matrix_jobs, run_attack_matrix

        assert set(attack_names()) == {
            "spectre_v2", "spectre_rsb", "trojan", "btb_reuse", "pht_reuse",
            "btb_eviction", "rsb_overflow", "dos",
        }
        result = run_attack_matrix(
            attacks=["spectre_v2"], models=["baseline", "ST_SKLCond",
                                            "ucode_protection_2"],
        )
        frame = result.frame
        # Uniform protocol: flushing protection is scored as protected even
        # though it is not an STBPU subclass (previously isinstance-dispatch
        # treated it as unprotected).
        assert frame.metric("ucode_protection_2", "spectre_v2", "protected") == 1.0
        assert frame.metric("ST_SKLCond", "spectre_v2", "protected") == 1.0
        assert frame.metric("baseline", "spectre_v2", "protected") == 0.0
        assert frame.metric("baseline", "spectre_v2", "success") == 1.0
        assert frame.metric("ST_SKLCond", "spectre_v2", "success") == 0.0
        # Job expansion is deterministic and parallel-safe by construction.
        jobs_a = attack_matrix_jobs(attacks=["spectre_v2"], models=["baseline"])
        jobs_b = attack_matrix_jobs(attacks=["spectre_v2"], models=["baseline"])
        assert jobs_a == jobs_b

    def test_duplicate_result_cells_are_rejected(self):
        from repro.engine import JobRecord, ResultFrame

        records = [
            JobRecord(index=0, kind="trace", model="baseline", workload="505.mcf"),
            JobRecord(index=1, kind="trace", model="baseline", workload="505.mcf"),
        ]
        with pytest.raises(ValueError, match="duplicate result cell"):
            ResultFrame(records)

    def test_unknown_job_kind_is_rejected(self):
        with pytest.raises(ValueError, match="job kind"):
            SimulationGrid(kind="bogus")
        bad = Job(index=0, kind="trace", model=ModelSpec.of("baseline"))
        object.__setattr__(bad, "kind", "bogus")
        with pytest.raises(ValueError, match="unknown job kind"):
            execute_job(bad)


class TestDriverParity:
    def test_figure3_parallel_matches_serial(self):
        from repro.experiments.figure3 import run_figure3

        serial = run_figure3(_SMALL_SCALE, workloads=["505.mcf", "519.lbm"], workers=1)
        parallel = run_figure3(_SMALL_SCALE, workloads=["505.mcf", "519.lbm"], workers=2)
        assert serial == parallel


class TestCLI:
    def test_figure3_smoke(self, capsys, tmp_path):
        from repro.cli import main

        json_path = tmp_path / "figure3.json"
        exit_code = main([
            "figure3", "--workload-limit", "1", "--branches", "1200",
            "--warmup", "100", "--workers", "2", "--json", str(json_path),
        ])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "ST_SKLCond" in output
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == "repro.figure3/v1"
        assert payload["spec"] == "figure3"
        assert payload["result"]["model_order"][0] == "baseline"

    def test_list_commands(self, capsys):
        from repro.cli import main

        assert main(["list-models"]) == 0
        assert "ST_SKLCond" in capsys.readouterr().out
        assert main(["list-workloads", "--category", "spec"]) == 0
        assert "505.mcf" in capsys.readouterr().out
