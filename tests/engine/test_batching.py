"""Tests for batched pool execution, executor reuse, shared-memory trace
shipping, and the bounded LRU trace cache."""

import multiprocessing

import pytest

from repro.engine import (
    EngineRunner,
    ExperimentScale,
    SimulationGrid,
    TraceCache,
    job_batches,
    trace_cache_stats,
    trace_for,
)
from repro.engine.sharing import SharedTrace, TraceShipment, attach_shipment
from repro.engine.workloads import install_trace

_SCALE = ExperimentScale(branch_count=1_200, warmup_branches=100, seed=13)


def _grid(models=("baseline", "ST_SKLCond"), workloads=("505.mcf", "541.leela")):
    return SimulationGrid(kind="trace", models=models, workloads=workloads,
                          scale=_SCALE)


class TestJobBatches:
    def test_batches_cover_jobs_in_order(self):
        jobs = _grid().jobs()
        batches = job_batches(jobs, workers=2)
        flattened = [job for batch in batches for job in batch]
        assert flattened == jobs
        assert all(batches)

    def test_chunk_sizing(self):
        jobs = list(range(100))
        batches = job_batches(jobs, workers=4, parts_per_worker=4)
        # 100 jobs over 16 slots -> chunks of 7.
        assert max(len(batch) for batch in batches) == 7
        assert job_batches(jobs, workers=200) and all(
            len(batch) == 1 for batch in job_batches(jobs, workers=200))
        assert job_batches([], workers=4) == []


class TestExecutorReuse:
    def test_pool_persists_across_runs(self):
        grid = _grid()
        with EngineRunner(workers=2) as runner:
            first = runner.run(grid)
            pool = runner._pool
            assert pool is not None
            second = runner.run(grid)
            assert runner._pool is pool  # same executor, not rebuilt
        assert runner._pool is None  # close() tears it down
        assert first.to_json() == second.to_json()

    def test_progress_counts_every_job(self):
        seen = []
        grid = _grid()
        with EngineRunner(workers=2) as runner:
            runner.run(grid, progress=lambda done, total, record:
                       seen.append((done, total)))
        total = len(grid.jobs())
        assert [done for done, _ in seen] == list(range(1, total + 1))
        assert all(t == total for _, t in seen)


class TestSharedMemoryShipping:
    def test_spawn_run_matches_serial(self):
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        grid = _grid()
        serial = EngineRunner(workers=1).run(grid)
        with EngineRunner(workers=2, start_method="spawn") as runner:
            spawned = runner.run(grid)
            assert runner._shipments  # traces went through shared memory
        assert serial.to_json() == spawned.to_json()

    def test_spawn_smt_jobs_materialise_shared_items(self):
        # SMT merging iterates the traces themselves; a SharedTrace must
        # materialise its lazy item stream for it (regression: reading the
        # raw ``items`` list of a shipped trace saw zero branches).
        if "spawn" not in multiprocessing.get_all_start_methods():
            pytest.skip("spawn start method unavailable")
        grid = SimulationGrid(
            kind="smt", models=("baseline", "conservative"),
            workloads=(("505.mcf", "541.leela"),), scale=_SCALE)
        serial = EngineRunner(workers=1).run(grid)
        with EngineRunner(workers=2, start_method="spawn") as runner:
            spawned = runner.run(grid)
        assert serial.to_json() == spawned.to_json()

    def test_reused_fork_pool_sees_traces_of_later_runs(self):
        # The second run's traces postdate the workers' fork; they must ship
        # through shared memory instead of silently regenerating per worker.
        first = _grid(workloads=("505.mcf",))
        second = SimulationGrid(kind="trace", models=("baseline", "conservative"),
                                workloads=("519.lbm",), scale=_SCALE)
        serial = EngineRunner(workers=1).run(second)
        with EngineRunner(workers=2) as runner:
            runner.run(first)
            assert not runner._shipments
            reused = runner.run(second)
            assert runner._shipments  # new traces were shipped, not re-generated
        assert serial.to_json() == reused.to_json()

    def test_models_registered_between_runs_reach_forked_workers(self):
        from repro.bpu.protections import make_unprotected_baseline
        from repro.engine.registry import _MODELS, register_model

        name = "late-registered-baseline"
        grid = _grid(models=("baseline",), workloads=("505.mcf",))
        late = SimulationGrid(kind="trace", models=(name,),
                              workloads=("505.mcf",), scale=_SCALE)
        with EngineRunner(workers=2) as runner:
            runner.run(grid)  # workers fork here, before the registration
            register_model(name, lambda seed=0: make_unprotected_baseline())
            try:
                frame = runner.run(late)  # pool must rebuild on the new generation
            finally:
                _MODELS.pop(name, None)
        assert frame.record(name, "505.mcf").metrics["oae_accuracy"] > 0

    def test_shipment_round_trip_reconstructs_trace(self):
        trace = trace_for("505.mcf", 1_000, 3)
        key = ("505.mcf", 1_000, 3)
        shipment = TraceShipment({key: trace})
        try:
            # Attach in-process (workers do the same via the batch payload).
            installed = attach_shipment(shipment.descriptor)
            assert installed == 1
            shared = trace_for(*key)
            assert isinstance(shared, SharedTrace)
            assert len(shared) == len(trace)
            assert shared.name == trace.name
            # Lazy materialisation rebuilds the identical item stream.
            assert list(shared) == list(trace)
            assert list(shared.branches()) == list(trace.branches())
            columns = shared.columns()
            reference = trace.columns()
            assert columns.segments == reference.segments
            assert columns.takens == reference.takens
            assert columns.conditionals == reference.conditionals
            assert columns.arrays().ips.tolist() == reference.arrays().ips.tolist()
        finally:
            self._release(shipment, key, trace)  # restore for other tests

    def test_attach_is_idempotent_per_block(self):
        trace = trace_for("541.leela", 800, 3)
        key = ("541.leela", 800, 3)
        shipment = TraceShipment({key: trace})
        try:
            assert attach_shipment(shipment.descriptor) == 1
            assert attach_shipment(shipment.descriptor) == 0
        finally:
            self._release(shipment, key, trace)

    def test_evicted_shared_trace_rematerialises_from_block(self):
        # Shipped keys survive LRU eviction: the cache-miss resolver rebuilds
        # the SharedTrace from the mapped block instead of re-generating.
        from repro.engine.workloads import _TRACE_CACHE

        trace = trace_for("519.lbm", 700, 3)
        key = ("519.lbm", 700, 3)
        shipment = TraceShipment({key: trace})
        try:
            attach_shipment(shipment.descriptor)
            _TRACE_CACHE.clear()  # simulate eviction of every entry
            resolved = trace_for(*key)
            assert isinstance(resolved, SharedTrace)
            assert list(resolved) == list(trace)
        finally:
            self._release(shipment, key, trace)

    @staticmethod
    def _release(shipment, key, trace):
        from repro.engine.sharing import _ATTACHED, _SHARED_SPECS

        _SHARED_SPECS.pop(key, None)
        attached = _ATTACHED.pop(shipment.descriptor["block"], None)
        if attached is not None:
            attached.close()
        shipment.close()
        install_trace(key, trace)


class TestTraceCacheLRU:
    def test_capacity_bound_and_counters(self):
        cache = TraceCache(capacity=2)
        cache.put(("a", 1, 0), "trace-a")
        cache.put(("b", 1, 0), "trace-b")
        assert cache.get(("a", 1, 0)) == "trace-a"   # refreshes a
        cache.put(("c", 1, 0), "trace-c")            # evicts b (LRU)
        assert cache.get(("b", 1, 0)) is None
        assert cache.get(("a", 1, 0)) == "trace-a"
        assert cache.get(("c", 1, 0)) == "trace-c"
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["capacity"] == 2
        assert stats["evictions"] == 1
        assert stats["hits"] == 3
        assert stats["misses"] == 1

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            TraceCache(capacity=0)

    def test_module_cache_reports_stats(self):
        trace_for("505.mcf", 600, 3)
        before = trace_cache_stats()
        trace_for("505.mcf", 600, 3)  # hit
        after = trace_cache_stats()
        assert after["hits"] == before["hits"] + 1
        assert after["capacity"] >= 1
