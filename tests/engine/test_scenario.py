"""Tests for scenario files: loading, validation, execution, CLI round-trips."""

import json
from pathlib import Path

import pytest

from repro.engine import (
    SCENARIO_SCHEMA,
    load_scenario,
    parse_scenario,
    run_scenario,
    scenario_envelope,
)

_QUICK = {
    "schema": SCENARIO_SCHEMA,
    "name": "test-sweep",
    "kind": "trace",
    "models": ["baseline", "ST_SKLCond"],
    "workloads": ["505.mcf", "519.lbm"],
    "scale": {"branch_count": 1500, "warmup_branches": 150, "seed": 13},
    "baseline": "baseline",
    "metrics": ["oae_accuracy"],
}

_QUICK_TOML = """
schema = "repro.scenario/v1"
name = "test-sweep"
kind = "trace"
models = ["baseline", "ST_SKLCond"]
workloads = ["505.mcf", "519.lbm"]
baseline = "baseline"
metrics = ["oae_accuracy"]

[scale]
branch_count = 1500
warmup_branches = 150
seed = 13
"""


class TestLoading:
    def test_json_round_trip(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(_QUICK))
        scenario = load_scenario(str(path))
        assert scenario.name == "test-sweep"
        assert [spec.name for spec in scenario.models] == ["baseline", "ST_SKLCond"]
        assert scenario.scale.branch_count == 1500
        assert len(scenario.jobs()) == 4

    def test_toml_round_trip_matches_json(self, tmp_path):
        json_path = tmp_path / "sweep.json"
        json_path.write_text(json.dumps(_QUICK))
        toml_path = tmp_path / "sweep.toml"
        toml_path.write_text(_QUICK_TOML)
        assert load_scenario(str(json_path)).jobs() == load_scenario(str(toml_path)).jobs()

    def test_unsupported_extension_is_rejected(self, tmp_path):
        path = tmp_path / "sweep.yaml"
        path.write_text("kind: trace")
        with pytest.raises(ValueError, match=".json or .toml"):
            load_scenario(str(path))

    def test_filename_is_the_default_name(self, tmp_path):
        data = dict(_QUICK)
        del data["name"]
        path = tmp_path / "nightly_sweep.json"
        path.write_text(json.dumps(data))
        assert load_scenario(str(path)).name == "nightly_sweep"


class TestValidation:
    def test_unknown_top_level_key(self):
        with pytest.raises(ValueError, match="unknown top-level keys"):
            parse_scenario({**_QUICK, "surprise": 1})

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            parse_scenario({**_QUICK, "kind": "quantum"})

    def test_unknown_model_names_the_registry(self):
        with pytest.raises(ValueError, match="registered models"):
            parse_scenario({**_QUICK, "models": ["not-a-model"]})

    def test_unknown_workload(self):
        with pytest.raises(ValueError, match="known workloads"):
            parse_scenario({**_QUICK, "workloads": ["not-a-workload"]})

    def test_unknown_seed_policy(self):
        with pytest.raises(ValueError, match="seed_policy"):
            parse_scenario({**_QUICK, "seed_policy": "per_job"})

    def test_unknown_scale_key(self):
        with pytest.raises(ValueError, match="unknown scale keys"):
            parse_scenario({**_QUICK, "scale": {"branches": 100}})

    def test_baseline_must_be_a_declared_model(self):
        with pytest.raises(ValueError, match="baseline"):
            parse_scenario({**_QUICK, "baseline": "ST_TAGE_SC_L_8KB"})

    def test_duplicate_model_labels_are_rejected(self):
        with pytest.raises(ValueError, match="not distinct"):
            parse_scenario({**_QUICK, "models": ["baseline", "baseline"],
                            "baseline": "baseline"})

    def test_schema_mismatch(self):
        with pytest.raises(ValueError, match="unsupported schema"):
            parse_scenario({**_QUICK, "schema": "repro.scenario/v99"})

    def test_attack_kind_takes_attacks_not_workloads(self):
        scenario = parse_scenario({
            "kind": "attack",
            "models": ["baseline"],
            "attacks": ["spectre_v2"],
        })
        jobs = scenario.jobs()
        assert len(jobs) == 1
        assert jobs[0].param("attack") == "spectre_v2"
        assert jobs[0].param("attempts") == 150  # engine default budget
        with pytest.raises(ValueError, match="unknown attacks"):
            parse_scenario({"kind": "attack", "models": ["baseline"],
                            "attacks": ["meltdown"]})

    def test_smt_pairs_parse_both_spellings(self):
        scenario = parse_scenario({
            "kind": "smt",
            "models": ["baseline"],
            "workloads": ["505.mcf+519.lbm", ["503.bwaves", "505.mcf"]],
        })
        assert scenario.workloads == [("505.mcf", "519.lbm"), ("503.bwaves", "505.mcf")]


class TestExecution:
    def test_run_scenario_serial_matches_two_workers(self):
        scenario = parse_scenario(_QUICK)
        serial = run_scenario(scenario, workers=1)
        parallel = run_scenario(scenario, workers=2)
        assert serial.frame.to_json() == parallel.frame.to_json()
        normalized = serial.normalized()["oae_accuracy"]
        assert normalized["505.mcf"]["baseline"] == pytest.approx(1.0)

    def test_envelope_is_versioned(self):
        result = run_scenario(parse_scenario(_QUICK))
        envelope = scenario_envelope(result)
        assert envelope["schema"] == SCENARIO_SCHEMA
        assert envelope["spec"] == "scenario"
        assert len(envelope["result"]["records"]) == 4
        assert envelope["result"]["baseline"] == "baseline"


_EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


class TestCheckedInExamples:
    def test_quick_example_runs_through_the_cli(self, capsys, tmp_path):
        from repro.cli import main

        json_path = tmp_path / "scenario.json"
        assert main(["run", str(_EXAMPLES / "scenario_quick.json"),
                     "--workers", "2", "--json", str(json_path)]) == 0
        captured = capsys.readouterr()
        assert "quick-oae-sweep" in captured.out
        payload = json.loads(json_path.read_text())
        assert payload["schema"] == SCENARIO_SCHEMA
        assert payload["result"]["records"]

    def test_smt_example_loads_and_expands(self):
        scenario = load_scenario(str(_EXAMPLES / "scenario_smt_sweep.toml"))
        assert scenario.kind == "smt"
        assert len(scenario.jobs()) == 6
        labels = [spec.display_label for spec in scenario.models]
        assert labels == ["TAGE_SC_L_64KB", "ST[r=0.05]", "ST[r=0.0005]"]
