"""Tests for the process-global vector-fallback notice: a batched grid of a
kernel-less model logs "no vector kernel" once — in the parent — and the
shipped suppression snapshot keeps workers quiet without pre-suppressing
notices for kernel-less models outside the job set."""

import logging

import pytest

from repro.bpu.common import StructureSizes
from repro.bpu.composite import make_skl_composite
from repro.engine import EngineRunner, ExperimentScale, SimulationGrid
from repro.engine import runner as runner_module
from repro.engine.registry import _MODELS, register_model
from repro.engine.runner import (
    _vector_fallback_suppressions,
    execute_job_batch,
)
from repro.sim import fastpath, vector

_SCALE = ExperimentScale(branch_count=400, warmup_branches=50, seed=13)

#: Registry name of the deliberately kernel-less test model.  Every shipped
#: registry model has a vector kernel since the TAGE/Perceptron steppers, so
#: the fallback path is pinned with a 3-bit-counter SKL composite (the SKL
#: engine builder only handles the 2-bit transition tables).
NO_KERNEL = "NoKernelCond"


def _make_no_kernel_model(seed=0):
    return make_skl_composite(
        sizes=StructureSizes(pht_counter_bits=3), name=NO_KERNEL)


def _jobs(models=(NO_KERNEL,), workloads=("505.mcf", "519.lbm")):
    return SimulationGrid(kind="trace", models=models,
                          workloads=workloads, scale=_SCALE).jobs()


@pytest.fixture()
def clean_fallback_state(monkeypatch):
    monkeypatch.setattr(vector, "_FALLBACK_LOGGED", set())
    monkeypatch.setattr(runner_module, "_PROBED_KERNEL_SPECS", {})
    register_model(NO_KERNEL, _make_no_kernel_model, replace=True)
    yield
    _MODELS.pop(NO_KERNEL, None)


class TestFallbackSuppressions:
    def test_probe_logs_once_and_returns_the_snapshot(
            self, caplog, clean_fallback_state):
        jobs = _jobs()
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                quiet = _vector_fallback_suppressions(jobs)
                quiet_again = _vector_fallback_suppressions(jobs)
        notices = [record for record in caplog.records
                   if "no vector kernel" in record.message]
        assert len(notices) == 1
        assert quiet == quiet_again == (NO_KERNEL,)

    def test_kernel_models_produce_no_notice(self, caplog, clean_fallback_state):
        jobs = _jobs(models=("baseline", "ST_SKLCond", "TAGE_SC_L_64KB",
                             "PerceptronBP"),
                     workloads=("505.mcf",))
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                quiet = _vector_fallback_suppressions(jobs)
        assert quiet == ()
        assert not [r for r in caplog.records if "no vector kernel" in r.message]

    def test_mixed_grid_ships_only_the_kernel_less_names(
            self, caplog, clean_fallback_state):
        # Kerneled and kernel-less models in one grid: the snapshot names
        # exactly the kernel-less one, and exactly one notice is logged.
        jobs = _jobs(models=("TAGE_SC_L_8KB", NO_KERNEL, "baseline"),
                     workloads=("505.mcf",))
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                quiet = _vector_fallback_suppressions(jobs)
        notices = [record for record in caplog.records
                   if "no vector kernel" in record.message]
        assert quiet == (NO_KERNEL,)
        assert len(notices) == 1

    def test_snapshot_never_covers_models_outside_the_job_set(
            self, clean_fallback_state):
        # A name logged earlier in the process for an unrelated model must
        # not ride along in this job set's snapshot: a worker that somehow
        # met that model would then drop its first notice on the floor.
        vector._FALLBACK_LOGGED.add("UnrelatedKernelLessModel")
        jobs = _jobs(models=(NO_KERNEL, "baseline"), workloads=("505.mcf",))
        with fastpath.forced_backend("vector"):
            quiet = _vector_fallback_suppressions(jobs)
        assert quiet == (NO_KERNEL,)

    def test_non_vector_backend_skips_probing(self, clean_fallback_state):
        with fastpath.forced_backend("fast"):
            assert _vector_fallback_suppressions(_jobs()) == ()
        assert runner_module._PROBED_KERNEL_SPECS == {}

    def test_shipped_suppressions_keep_a_worker_batch_quiet(
            self, caplog, clean_fallback_state):
        # Simulate the worker side in-process: a batch that would log gets
        # the parent's snapshot first and stays silent.
        jobs = _jobs(workloads=("505.mcf",))
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                execute_job_batch(jobs, (), (NO_KERNEL,))
        assert not [r for r in caplog.records if "no vector kernel" in r.message]

    def test_parallel_mixed_grid_logs_the_notice_once(
            self, caplog, clean_fallback_state):
        # End-to-end: multiple batches across two workers, one parent notice,
        # kerneled models riding in the same grid.
        jobs = _jobs(models=(NO_KERNEL, "TAGE_SC_L_8KB"))
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                with EngineRunner(workers=2) as runner:
                    parallel = runner.run_jobs(jobs)
        notices = [record for record in caplog.records
                   if "no vector kernel" in record.message]
        assert len(notices) == 1
        assert parallel.to_json() == EngineRunner().run_jobs(jobs).to_json()
