"""Tests for the process-global vector-fallback notice: a batched grid of a
kernel-less model (TAGE, Perceptron) logs "no vector kernel" once — in the
parent — and the shipped suppression snapshot keeps workers quiet."""

import logging

import pytest

from repro.engine import EngineRunner, ExperimentScale, SimulationGrid
from repro.engine import runner as runner_module
from repro.engine.runner import (
    _vector_fallback_suppressions,
    execute_job_batch,
)
from repro.sim import fastpath, vector

_SCALE = ExperimentScale(branch_count=400, warmup_branches=50, seed=13)


def _tage_jobs(workloads=("505.mcf", "519.lbm")):
    return SimulationGrid(kind="trace", models=("TAGE_SC_L_64KB",),
                          workloads=workloads, scale=_SCALE).jobs()


@pytest.fixture()
def clean_fallback_state(monkeypatch):
    monkeypatch.setattr(vector, "_FALLBACK_LOGGED", set())
    monkeypatch.setattr(runner_module, "_PROBED_KERNEL_SPECS", set())


class TestFallbackSuppressions:
    def test_probe_logs_once_and_returns_the_snapshot(
            self, caplog, clean_fallback_state):
        jobs = _tage_jobs()
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                quiet = _vector_fallback_suppressions(jobs)
                quiet_again = _vector_fallback_suppressions(jobs)
        notices = [record for record in caplog.records
                   if "no vector kernel" in record.message]
        assert len(notices) == 1
        assert quiet == quiet_again == ("TAGE_SC_L_64KB",)

    def test_kernel_models_produce_no_notice(self, caplog, clean_fallback_state):
        jobs = SimulationGrid(kind="trace", models=("baseline", "ST_SKLCond"),
                              workloads=("505.mcf",), scale=_SCALE).jobs()
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                quiet = _vector_fallback_suppressions(jobs)
        assert quiet == ()
        assert not [r for r in caplog.records if "no vector kernel" in r.message]

    def test_non_vector_backend_skips_probing(self, clean_fallback_state):
        with fastpath.forced_backend("fast"):
            assert _vector_fallback_suppressions(_tage_jobs()) == ()
        assert runner_module._PROBED_KERNEL_SPECS == set()

    def test_shipped_suppressions_keep_a_worker_batch_quiet(
            self, caplog, clean_fallback_state):
        # Simulate the worker side in-process: a batch that would log gets
        # the parent's snapshot first and stays silent.
        jobs = _tage_jobs(workloads=("505.mcf",))
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                execute_job_batch(jobs, (), ("TAGE_SC_L_64KB",))
        assert not [r for r in caplog.records if "no vector kernel" in r.message]

    def test_parallel_tage_grid_logs_the_notice_once(
            self, caplog, clean_fallback_state):
        # End-to-end: multiple batches across two workers, one parent notice.
        jobs = _tage_jobs()
        with fastpath.forced_backend("vector"):
            with caplog.at_level(logging.INFO, logger="repro.sim.vector"):
                with EngineRunner(workers=2) as runner:
                    parallel = runner.run_jobs(jobs)
        notices = [record for record in caplog.records
                   if "no vector kernel" in record.message]
        assert len(notices) == 1
        assert parallel.to_json() == EngineRunner().run_jobs(jobs).to_json()
