"""Tests for the remapping-function generator (primitives, constraints, metrics)."""

import random

import pytest

from repro.hashgen import (
    AVAILABLE_SBOXES,
    CompressionLayer,
    HardwareConstraints,
    KeyMixLayer,
    PBoxLayer,
    PRESENT_SBOX,
    RemapFunctionGenerator,
    SBoxLayer,
    build_reference_r1,
    check_design,
    measure_avalanche,
    measure_uniformity,
    rank_candidates,
    score_candidate,
    select_best,
    summarize_cost,
)
from repro.hashgen.optimization import REMAP_CONSTRAINTS
from repro.core.remapping import mix64


class TestPrimitives:
    def test_sbox_layer_is_bijective_on_nibbles(self):
        layer = SBoxLayer(16, PRESENT_SBOX)
        outputs = {layer.apply(value) for value in range(1 << 16)}
        assert len(outputs) == 1 << 16

    def test_sbox_rejects_non_permutation(self):
        with pytest.raises(ValueError):
            SBoxLayer(8, (0,) * 16)

    def test_pbox_moves_bits_and_is_free(self):
        layer = PBoxLayer((1, 0, 3, 2))
        assert layer.apply(0b0001) == 0b0010
        assert layer.cost().transistors == 0

    def test_pbox_rejects_bad_permutation(self):
        with pytest.raises(ValueError):
            PBoxLayer((0, 0, 1, 2))

    def test_compression_layer_folds(self):
        layer = CompressionLayer(16, 8)
        assert layer.apply(0x00FF) == 0xFF
        assert layer.apply(0xFF00) == 0xFF
        assert layer.apply(0xFFFF) == 0x00
        with pytest.raises(ValueError):
            CompressionLayer(8, 16)

    def test_keymix_xors(self):
        layer = KeyMixLayer(16, 0x00FF)
        assert layer.apply(0x0F0F) == 0x0FF0

    def test_all_registered_sboxes_are_permutations(self):
        for name, sbox in AVAILABLE_SBOXES.items():
            assert sorted(sbox) == list(range(len(sbox))), name


class TestConstraints:
    def test_reference_r1_is_single_cycle(self):
        constraints = HardwareConstraints(input_bits=80, output_bits=22)
        candidate = build_reference_r1(constraints)
        cost = summarize_cost(candidate.layers)
        check = check_design(candidate.layers, constraints)
        assert check.satisfied and check.complete
        assert cost.critical_path_transistors <= 45

    def test_violation_detected_for_tiny_budget(self):
        constraints = HardwareConstraints(
            input_bits=80, output_bits=22, max_critical_path_transistors=5
        )
        candidate = build_reference_r1()
        check = check_design(candidate.layers, constraints)
        assert not check.satisfied
        assert any("critical path" in violation for violation in check.violations)

    def test_output_must_not_exceed_input(self):
        with pytest.raises(ValueError):
            HardwareConstraints(input_bits=8, output_bits=16)


class TestMetrics:
    def test_good_mixer_is_uniform_and_avalanching(self):
        report = measure_uniformity(lambda v: mix64(v), 48, 14, samples=6_000)
        assert report.normalized_cv < 1.3
        avalanche = measure_avalanche(lambda v: mix64(v), 32, 14, samples=120)
        assert abs(avalanche.mean_flip_fraction - 0.5) < 0.08

    def test_truncation_is_not_avalanching(self):
        avalanche = measure_avalanche(lambda v: v & 0x3FFF, 32, 14, samples=60)
        assert avalanche.mean_flip_fraction < 0.1
        assert not avalanche.satisfies_sac

    def test_constant_function_fails_uniformity(self):
        report = measure_uniformity(lambda v: 7, 32, 14, samples=3_000)
        assert report.normalized_cv > 5

    def test_score_prefers_better_candidates(self):
        good_u = measure_uniformity(lambda v: mix64(v), 32, 14, samples=3_000)
        good_a = measure_avalanche(lambda v: mix64(v), 32, 14, samples=60)
        bad_u = measure_uniformity(lambda v: v & 0x3FFF, 32, 14, samples=3_000)
        bad_a = measure_avalanche(lambda v: v & 0x3FFF, 32, 14, samples=60)
        good = score_candidate(good_u, good_a, 36, 45)
        bad = score_candidate(bad_u, bad_a, 36, 45)
        assert good.total < bad.total


class TestGenerator:
    def test_generator_produces_constraint_satisfying_candidates(self):
        constraints = HardwareConstraints(input_bits=80, output_bits=22)
        generator = RemapFunctionGenerator(constraints, seed=5)
        evaluated = generator.search(attempts=8, uniformity_samples=1_500, avalanche_samples=25)
        assert evaluated
        for candidate in evaluated:
            assert candidate.check.satisfied and candidate.check.complete
            assert candidate.critical_path_transistors <= 45

    def test_selection_returns_lowest_score(self):
        constraints = HardwareConstraints(input_bits=80, output_bits=22)
        generator = RemapFunctionGenerator(constraints, seed=6)
        evaluated = generator.search(attempts=6, uniformity_samples=1_000, avalanche_samples=20)
        ranking = rank_candidates(evaluated, constraints)
        best = select_best(evaluated, constraints)
        assert best is not None
        assert best.total == pytest.approx(min(item.total for item in ranking))

    def test_remap_constraint_table_matches_table_ii(self):
        assert set(REMAP_CONSTRAINTS) == {"R1", "R2", "R3", "R4", "Rt", "Rp"}
        assert REMAP_CONSTRAINTS["R1"].input_bits == 80
        assert REMAP_CONSTRAINTS["R1"].output_bits == 22

    def test_reference_r1_avalanche_and_uniformity(self):
        candidate = build_reference_r1()
        uniformity = measure_uniformity(candidate.apply, 80, 22, samples=3_000)
        avalanche = measure_avalanche(candidate.apply, 80, 22, samples=40)
        assert uniformity.normalized_cv < 1.5
        assert 0.35 < avalanche.mean_flip_fraction < 0.65
