"""Tests for secret tokens, keyed remapping, and target encryption."""

import pytest

from repro.bpu.common import StructureSizes
from repro.core.encryption import XorTargetCodec, cross_token_decode
from repro.core.remapping import TABLE_II, STMappingProvider, keyed_remap, mix64
from repro.core.secret_token import SecretToken, SecretTokenRegister, TokenGenerator


class TestSecretToken:
    def test_halves_partition_the_value(self):
        token = SecretToken.from_halves(psi=0xDEADBEEF, phi=0x12345678)
        assert token.psi == 0xDEADBEEF
        assert token.phi == 0x12345678
        assert token.value == (0xDEADBEEF << 32) | 0x12345678

    def test_value_masked_to_64_bits(self):
        token = SecretToken((1 << 70) | 0x42)
        assert token.value == 0x42

    def test_generator_is_deterministic_per_seed(self):
        a = TokenGenerator(seed=9)
        b = TokenGenerator(seed=9)
        assert [a.next_token() for _ in range(5)] == [b.next_token() for _ in range(5)]
        assert TokenGenerator(seed=10).next_token() != TokenGenerator(seed=9).next_token()

    def test_register_rerandomize_changes_token(self):
        register = SecretTokenRegister(TokenGenerator(seed=1))
        before = register.token
        after = register.rerandomize()
        assert before != after
        assert register.rerandomization_count == 1

    def test_register_load_restores_process_token(self):
        register = SecretTokenRegister(TokenGenerator(seed=1))
        saved = SecretToken.from_halves(1, 2)
        register.load(saved)
        assert register.token is saved


class TestKeyedRemap:
    def test_deterministic_and_bounded(self):
        for bits in (5, 9, 14, 22):
            value = keyed_remap(0x1234, 0xABCDEF, output_bits=bits, domain=3)
            assert value == keyed_remap(0x1234, 0xABCDEF, output_bits=bits, domain=3)
            assert 0 <= value < (1 << bits)

    def test_key_changes_output(self):
        outputs = {keyed_remap(psi, 0x40_0000, output_bits=14, domain=1) for psi in range(64)}
        assert len(outputs) > 32  # different keys map the same branch differently

    def test_domain_separation(self):
        a = keyed_remap(7, 0x40_0000, output_bits=14, domain=1)
        b = keyed_remap(7, 0x40_0000, output_bits=14, domain=2)
        assert a != b or True  # they may rarely coincide; check a spread instead
        spread = {keyed_remap(7, 0x40_0000, output_bits=14, domain=d) for d in range(16)}
        assert len(spread) > 8

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            keyed_remap(1, 2, output_bits=0, domain=1)

    def test_mix64_avalanches_single_bit_flips(self):
        base = mix64(0x0123_4567_89AB_CDEF)
        flips = [bin(base ^ mix64(0x0123_4567_89AB_CDEF ^ (1 << bit))).count("1")
                 for bit in range(0, 64, 7)]
        assert min(flips) > 10


class TestTableII:
    def test_contains_all_six_functions(self):
        assert set(TABLE_II) == {"R1", "R2", "R3", "R4", "Rt", "Rp"}

    def test_stbpu_inputs_include_token_and_full_address(self):
        assert TABLE_II["R1"].stbpu_input_bits == 80
        assert TABLE_II["R1"].output_bits == 22
        assert TABLE_II["R3"].output_bits == 14
        for spec in TABLE_II.values():
            assert spec.stbpu_input_bits > spec.output_bits
            assert spec.compression_ratio > 1.0


class TestSTMappingProvider:
    def test_uses_full_48_bit_address(self):
        provider = STMappingProvider(SecretToken.from_halves(3, 4))
        low = provider.btb_mode1(0x0000_1234_5678)
        aliased = provider.btb_mode1(0x0001_1234_5678)
        assert low != aliased  # the baseline would have collided here

    def test_different_tokens_give_different_mappings(self):
        a = STMappingProvider(SecretToken.from_halves(1, 0))
        b = STMappingProvider(SecretToken.from_halves(2, 0))
        addresses = [0x40_0000 + i * 64 for i in range(64)]
        differing = sum(1 for ip in addresses if a.btb_mode1(ip) != b.btb_mode1(ip))
        assert differing > 56

    def test_set_token_changes_mapping_immediately(self):
        provider = STMappingProvider(SecretToken.from_halves(1, 0))
        before = provider.btb_mode1(0x40_0000)
        provider.set_token(SecretToken.from_halves(0xFEED, 0))
        after = provider.btb_mode1(0x40_0000)
        assert before != after

    def test_outputs_within_structure_bounds(self):
        sizes = StructureSizes()
        provider = STMappingProvider(SecretToken.from_halves(5, 6), sizes)
        for ip in (0x40_0000, 0x7FFF_FFFF_FFF0, 0x5555_5555_5550):
            key = provider.btb_mode1(ip)
            assert key.index < sizes.btb_sets
            assert key.tag < (1 << sizes.btb_tag_bits)
            assert key.offset < (1 << sizes.btb_offset_bits)
            assert provider.pht_index_1level(ip) < sizes.pht_entries
            assert provider.pht_index_2level(ip, 0x2ABCD) < sizes.pht_entries
            assert provider.perceptron_index(ip, 1024) < 1024

    def test_index_distribution_roughly_uniform(self):
        provider = STMappingProvider(SecretToken.from_halves(11, 0))
        sizes = provider.sizes
        counts = [0] * sizes.btb_sets
        samples = 8192
        for i in range(samples):
            counts[provider.btb_mode1(0x40_0000 + i * 16).index] += 1
        expected = samples / sizes.btb_sets
        assert max(counts) < expected * 4


class TestEncryption:
    def test_same_token_roundtrips(self):
        codec = XorTargetCodec(SecretToken.from_halves(0, 0xCAFEBABE))
        assert codec.decode(codec.encode(0x1234_5678)) == 0x1234_5678

    def test_cross_token_decode_garbles_target(self):
        attacker = SecretToken.from_halves(0, 0x1111_1111)
        victim = SecretToken.from_halves(0, 0x2222_2222)
        gadget = 0x0041_2345
        observed = cross_token_decode(attacker, victim, gadget)
        assert observed != gadget
        assert observed == gadget ^ 0x1111_1111 ^ 0x2222_2222

    def test_set_token_invalidates_old_entries(self):
        codec = XorTargetCodec(SecretToken.from_halves(0, 0xAAAA_0001))
        stored = codec.encode(0x00BB_CCDD)
        codec.set_token(SecretToken.from_halves(0, 0x5555_0002))
        assert codec.decode(stored) != 0x00BB_CCDD
