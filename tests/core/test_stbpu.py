"""Tests for the STBPU wrapper, monitoring MSRs, and the OS policy layer."""

import pytest

from repro.bpu.common import AccessResult, Prediction, PredictorStats
from repro.core.monitoring import MonitorConfig, RerandomizationMonitor, thresholds_for_difficulty
from repro.core.os_interface import STBPUOperatingSystem
from repro.core.stbpu import KERNEL_CONTEXT_ID, make_stbpu_skl, make_stbpu_tage
from repro.bpu.tage import TAGE_SC_L_8KB
from repro.sim.bpu_sim import TraceSimulator
from repro.trace.branch import BranchRecord, BranchType, PrivilegeMode


def _branch(ip=0x40_0000, ctx=0, taken=True, btype=BranchType.DIRECT_JUMP,
            mode=PrivilegeMode.USER):
    return BranchRecord(ip=ip, target=ip + 0x1000, taken=taken, branch_type=btype,
                        context_id=ctx, mode=mode)


def _result(mispredicted=False, eviction=False, direction_correct=True):
    return AccessResult(
        prediction=Prediction(True, None),
        direction_correct=direction_correct,
        target_correct=not mispredicted,
        effective_correct=not mispredicted,
        btb_eviction=eviction,
        mispredicted=mispredicted,
    )


class TestMonitorConfig:
    def test_rejects_non_positive_thresholds(self):
        with pytest.raises(ValueError):
            MonitorConfig(misprediction_threshold=0, eviction_threshold=10)
        with pytest.raises(ValueError):
            MonitorConfig(misprediction_threshold=10, eviction_threshold=10,
                          direction_misprediction_threshold=0)

    def test_thresholds_for_difficulty_scales_linearly(self):
        config = thresholds_for_difficulty(8.38e5, 5.3e5, r=0.05)
        assert config.misprediction_threshold == int(8.38e5 * 0.05)
        assert config.eviction_threshold == int(5.3e5 * 0.05)
        tighter = thresholds_for_difficulty(8.38e5, 5.3e5, r=0.005)
        assert tighter.misprediction_threshold < config.misprediction_threshold

    def test_r_must_be_positive(self):
        with pytest.raises(ValueError):
            thresholds_for_difficulty(1e5, 1e5, r=0)


class TestRerandomizationMonitor:
    def test_fires_on_misprediction_threshold(self):
        monitor = RerandomizationMonitor(MonitorConfig(3, 100))
        branch = _branch(btype=BranchType.INDIRECT_JUMP)
        assert not monitor.observe(branch, _result(mispredicted=True))
        assert not monitor.observe(branch, _result(mispredicted=True))
        assert monitor.observe(branch, _result(mispredicted=True))
        assert monitor.fired_count == 1
        # Counter reloads after firing.
        assert monitor.counters.mispredictions_remaining == 3

    def test_reset_clears_cumulative_counters_reload_does_not(self):
        monitor = RerandomizationMonitor(MonitorConfig(3, 100))
        branch = _branch(btype=BranchType.INDIRECT_JUMP)
        for _ in range(3):
            monitor.observe(branch, _result(mispredicted=True, eviction=True))
        assert monitor.fired_count == 1
        assert monitor.observed_mispredictions == 3
        assert monitor.observed_evictions == 3
        # reload() is the post-firing hardware action: thresholds only.
        monitor.reload()
        assert monitor.observed_mispredictions == 3
        # reset() is the power-on action: observations clear too.
        monitor.reset()
        assert monitor.fired_count == 0
        assert monitor.observed_mispredictions == 0
        assert monitor.observed_evictions == 0
        assert monitor.counters.mispredictions_remaining == 3

    def test_fires_on_eviction_threshold(self):
        monitor = RerandomizationMonitor(MonitorConfig(100, 2))
        branch = _branch()
        assert not monitor.observe(branch, _result(eviction=True))
        assert monitor.observe(branch, _result(eviction=True))

    def test_separate_direction_register_isolates_conditional_noise(self):
        config = MonitorConfig(misprediction_threshold=2, eviction_threshold=100,
                               direction_misprediction_threshold=50)
        monitor = RerandomizationMonitor(config)
        conditional = _branch(btype=BranchType.CONDITIONAL, taken=False)
        # Direction mispredictions hit the dedicated (large) counter, so the
        # small main counter does not fire.
        for _ in range(10):
            fired = monitor.observe(conditional,
                                    _result(mispredicted=True, direction_correct=False))
        assert not fired
        assert monitor.counters.mispredictions_remaining == 2


class TestSTBPU:
    def test_each_context_gets_its_own_token(self):
        model = make_stbpu_skl(seed=3)
        assert model.token_of(1) != model.token_of(2)

    def test_shared_group_contexts_share_one_token(self):
        model = make_stbpu_skl(seed=3, shared_token_groups={1: "apache", 2: "apache"})
        assert model.token_of(1) == model.token_of(2)

    def test_kernel_runs_under_its_own_token(self):
        model = make_stbpu_skl(seed=3)
        user = _branch(ctx=5)
        kernel = _branch(ctx=5, mode=PrivilegeMode.KERNEL)
        model.access(user)
        user_token = model.current_token()
        model.access(kernel)
        assert model.current_token() == model.token_of(KERNEL_CONTEXT_ID)
        assert model.current_token() != user_token

    def test_rerandomization_changes_mapping_and_counts(self):
        model = make_stbpu_skl(seed=3)
        branch = _branch()
        model.access(branch)
        before_key = model.mapping.btb_mode1(branch.ip)
        token_before = model.current_token()
        model.rerandomize_current()
        assert model.current_token() != token_before
        assert model.mapping.btb_mode1(branch.ip) != before_key
        assert model.stats.rerandomizations == 1

    def test_rerandomization_discards_history_without_flushing_others(self):
        model = make_stbpu_skl(seed=3)
        branch = _branch(ctx=0)
        other = _branch(ip=0x9999_0000, ctx=1)
        model.access(branch)
        model.access(branch)
        model.on_context_switch(1)
        model.access(other)
        model.access(other)
        model.on_context_switch(0)
        model.rerandomize_current()
        # Context 0's entry is unreachable under its new token.
        assert not model.access(branch).btb_hit
        # Context 1's state is untouched (different, unchanged token).
        model.on_context_switch(1)
        assert model.access(other).btb_hit

    def test_low_threshold_triggers_automatic_rerandomization(self):
        config = MonitorConfig(misprediction_threshold=5, eviction_threshold=5,
                               direction_misprediction_threshold=None)
        model = make_stbpu_skl(monitor_config=config, seed=1)
        # Cold indirect branches at fresh addresses mispredict every time.
        for index in range(64):
            model.access(_branch(ip=0x50_0000 + index * 64, btype=BranchType.INDIRECT_JUMP))
        assert model.stats.rerandomizations >= 1

    def test_protection_preserves_accuracy_for_single_process(self, small_mcf_trace):
        protected = make_stbpu_tage(TAGE_SC_L_8KB, seed=2)
        stats = PredictorStats()
        for branch in small_mcf_trace.branches():
            stats.record(protected.access(branch), branch)
        assert stats.oae_accuracy > 0.5

    def test_reset_restores_initial_state(self):
        model = make_stbpu_skl(seed=3)
        model.access(_branch())
        model.rerandomize_current()
        model.reset()
        assert model.stats.rerandomizations == 0
        assert not model.access(_branch()).btb_hit

    def test_reset_model_reports_same_protection_stats_as_fresh_build(self):
        # Regression: reset() used to install the initial token *before*
        # replacing self.stats, so a reset model reported token_loads == 0
        # while a fresh one reported 1.
        fresh = make_stbpu_skl(seed=3)
        reused = make_stbpu_skl(seed=3)
        for index in range(50):
            reused.access(_branch(ip=0x40_0000 + index * 64, ctx=index % 3))
        reused.on_context_switch(2)
        reused.reset()
        assert reused.protection_stats() == fresh.protection_stats()
        assert reused.stats.token_loads == 1

    def test_reset_model_replays_like_fresh_build(self, small_apache_trace):
        # Token *values* after a reset are fresh random draws by design, but
        # the protection counters visible to an experiment — token loads and
        # contexts seen are functions of the trace's context/mode structure
        # alone — must match a cold start exactly.  Thresholds are set high
        # enough that no token-dependent re-randomization fires.
        config = MonitorConfig(10**9, 10**9, None)
        fresh = make_stbpu_skl(seed=9, monitor_config=config)
        reused = make_stbpu_skl(seed=9, monitor_config=config)
        simulator = TraceSimulator()
        simulator.run(reused, small_apache_trace)
        reused.reset()

        fresh_result = simulator.run(fresh, small_apache_trace)
        reused_result = simulator.run(reused, small_apache_trace)
        assert fresh.protection_stats() == reused.protection_stats()
        assert fresh_result.stats.branches == reused_result.stats.branches

    def test_reset_clears_monitor_observation_counters(self):
        # Regression: STBPU.reset() only reloaded the monitor's threshold
        # counters, so fired_count / observed_* leaked across replays.
        model = make_stbpu_skl(seed=3, monitor_config=MonitorConfig(2, 2, None))
        for index in range(2000):
            model.access(_branch(ip=0x40_0000 + index * 64,
                                 btype=BranchType.INDIRECT_JUMP))
        assert model.monitor.observed_mispredictions > 0
        model.reset()
        assert model.monitor.fired_count == 0
        assert model.monitor.observed_mispredictions == 0
        assert model.monitor.observed_evictions == 0


class TestOperatingSystem:
    def test_register_and_share(self):
        hardware = make_stbpu_skl(seed=4)
        os_layer = STBPUOperatingSystem(hardware)
        os_layer.register_process(1, name="worker-1", sharing_group="pool")
        os_layer.register_process(2, name="worker-2", sharing_group="pool")
        os_layer.register_process(3, name="other")
        assert os_layer.token_of(1) == os_layer.token_of(2)
        assert os_layer.token_of(3) != os_layer.token_of(1)

    def test_kernel_context_cannot_be_registered(self):
        os_layer = STBPUOperatingSystem(make_stbpu_skl(seed=4))
        with pytest.raises(ValueError):
            os_layer.register_process(KERNEL_CONTEXT_ID)

    def test_difficulty_factor_reprograms_thresholds(self):
        hardware = make_stbpu_skl(seed=4)
        os_layer = STBPUOperatingSystem(hardware)
        relaxed = os_layer.set_difficulty_factor(0.05)
        strict = os_layer.set_difficulty_factor(0.005)
        assert strict.misprediction_threshold < relaxed.misprediction_threshold
        assert hardware.monitor.config == strict

    def test_sensitive_process_gets_tighter_thresholds(self):
        hardware = make_stbpu_skl(seed=4)
        os_layer = STBPUOperatingSystem(hardware)
        os_layer.register_process(1, sensitive=True)
        os_layer.register_process(2, sensitive=False)
        sensitive = os_layer.config_for_process(1)
        normal = os_layer.config_for_process(2)
        assert sensitive.misprediction_threshold < normal.misprediction_threshold

    def test_context_switch_loads_process_token(self):
        hardware = make_stbpu_skl(seed=4)
        os_layer = STBPUOperatingSystem(hardware)
        os_layer.register_process(1)
        os_layer.context_switch(1)
        assert hardware.current_token() == os_layer.token_of(1)
        assert os_layer.running_context == 1
