"""Shared fixtures for the test suite."""

import pytest

from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="session")
def small_mcf_trace():
    """A small, deterministic 505.mcf trace reused across tests."""
    return generate_trace("505.mcf", seed=11, branch_count=4_000)


@pytest.fixture(scope="session")
def small_apache_trace():
    """A small multi-context application trace (context/mode switches present)."""
    return generate_trace("apache2_prefork_c128", seed=11, branch_count=4_000)
