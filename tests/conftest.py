"""Shared fixtures for the test suite."""

import pytest

from repro.store import STORE_ENV
from repro.trace.synthetic import generate_trace


@pytest.fixture(autouse=True)
def _no_ambient_result_store(monkeypatch):
    """Keep CLI-driven tests hermetic: a developer's exported $REPRO_STORE
    must never attach a real store to `main([...])` invocations (stale
    cached records would mask regressions and the suite would pollute it)."""
    monkeypatch.delenv(STORE_ENV, raising=False)


@pytest.fixture(scope="session")
def small_mcf_trace():
    """A small, deterministic 505.mcf trace reused across tests."""
    return generate_trace("505.mcf", seed=11, branch_count=4_000)


@pytest.fixture(scope="session")
def small_apache_trace():
    """A small multi-context application trace (context/mode switches present)."""
    return generate_trace("apache2_prefork_c128", seed=11, branch_count=4_000)
