"""Tests for :mod:`repro.faults`: the spec mini-language, the seeded
injector, and the fault-wrapping store decorator."""

import time

import pytest

from repro.faults import (
    CORRUPT_PAYLOAD,
    FAULTS_ENV,
    FaultInjector,
    FaultPlan,
    FaultyStore,
    parse_fault_spec,
    plan_from_env,
    wrap_store,
)
from repro.store import MemoryStore

FP = "a" * 64


class TestSpecParsing:
    def test_full_spec_round_trips(self):
        plan = parse_fault_spec(
            "error=0.2, latency=0.1, latency_seconds=0.002, corrupt=0.05,"
            " seed=7, hang=wedge, hang_seconds=30")
        assert plan == FaultPlan(
            error_rate=0.2, latency_rate=0.1, latency_seconds=0.002,
            corrupt_rate=0.05, seed=7, hang="wedge", hang_seconds=30.0)
        assert plan.active

    def test_empty_clauses_are_tolerated(self):
        assert parse_fault_spec("error=0.5,,") == FaultPlan(error_rate=0.5)
        assert parse_fault_spec("") == FaultPlan()

    @pytest.mark.parametrize("spec", [
        "error",            # no separator
        "error=",           # no value
        "turbulence=0.5",   # unknown key
        "error=lots",       # not a float
        "seed=1.5",         # not an int
    ])
    def test_malformed_clauses_raise(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    @pytest.mark.parametrize("spec", [
        "error=1.5", "latency=-0.1", "corrupt=2",     # rates out of [0, 1]
        "latency_seconds=-1", "hang_seconds=-0.5",    # negative durations
    ])
    def test_out_of_range_values_raise(self, spec):
        with pytest.raises(ValueError):
            parse_fault_spec(spec)

    def test_seed_only_plan_is_inactive(self):
        assert not parse_fault_spec("seed=42").active
        assert not FaultPlan().active

    def test_plan_from_env(self):
        assert plan_from_env({}) is None
        assert plan_from_env({FAULTS_ENV: ""}) is None
        plan = plan_from_env({FAULTS_ENV: "error=0.25,seed=3"})
        assert plan == FaultPlan(error_rate=0.25, seed=3)


class TestInjector:
    def test_rolls_are_deterministic_per_seed(self):
        plan = parse_fault_spec("error=0.5,seed=11")
        first = FaultInjector(plan)
        second = FaultInjector(plan)
        rolls = [first.roll(0.5) for _ in range(64)]
        assert rolls == [second.roll(0.5) for _ in range(64)]
        assert any(rolls) and not all(rolls)

    def test_zero_rate_never_rolls_nor_consumes_entropy(self):
        injector = FaultInjector(parse_fault_spec("error=0.5,seed=11"))
        reference = FaultInjector(parse_fault_spec("error=0.5,seed=11"))
        assert not injector.roll(0.0)
        # The zero-rate roll must not advance the RNG: later rolls stay in
        # lockstep with an injector that never saw it.
        assert [injector.roll(0.5) for _ in range(16)] == \
            [reference.roll(0.5) for _ in range(16)]

    def test_maybe_hang_only_wedges_matching_names(self):
        injector = FaultInjector(
            parse_fault_spec("hang=wedge,hang_seconds=0"))
        assert injector.maybe_hang("calm-scenario") is False
        assert injector.maybe_hang("wedge-this-one") is True
        assert injector.counters()["hangs"] == 1

    def test_maybe_hang_honours_abort(self):
        injector = FaultInjector(
            parse_fault_spec("hang=wedge,hang_seconds=60"))
        start = time.monotonic()
        assert injector.maybe_hang("wedge", should_abort=lambda: True,
                                   tick=0.01) is True
        assert time.monotonic() - start < 5.0


class TestFaultyStore:
    def test_certain_error_rate_fails_every_round_trip(self):
        store = FaultyStore(MemoryStore(), parse_fault_spec("error=1"))
        with pytest.raises(OSError, match="injected"):
            store.put("envelope", FP, {"x": 1})
        with pytest.raises(OSError, match="injected"):
            store.get("envelope", FP)
        assert store.injector.counters()["injected_errors"] == 2
        assert len(store.inner) == 0

    def test_certain_corruption_mangles_hits_only(self):
        store = FaultyStore(MemoryStore(), parse_fault_spec("corrupt=1"))
        assert store.get("envelope", FP) is None  # a miss stays a miss
        store.put("envelope", FP, {"x": 1})
        assert store.get("envelope", FP) == CORRUPT_PAYLOAD
        # The inner store is untouched: corruption is a read-side illusion.
        assert store.inner.get("envelope", FP) == {"x": 1}
        assert store.injector.counters()["injected_corruption"] == 1

    def test_latency_injection_counts(self):
        store = FaultyStore(
            MemoryStore(),
            parse_fault_spec("latency=1,latency_seconds=0"))
        store.put("envelope", FP, {"x": 1})
        assert store.get("envelope", FP) == {"x": 1}
        assert store.injector.counters()["injected_latency"] == 2

    def test_counters_are_shared_with_the_inner_store(self):
        store = FaultyStore(MemoryStore(), parse_fault_spec("seed=1"))
        store.put("envelope", FP, {"x": 1})
        store.get("envelope", FP)
        assert store.counters is store.inner.counters
        assert store.counters.hits == 1 and store.counters.writes == 1

    def test_stats_carry_the_fault_counters(self):
        store = FaultyStore(MemoryStore(), parse_fault_spec("corrupt=1"))
        store.put("envelope", FP, {"x": 1})
        store.get("envelope", FP)
        for payload in (store.stats(), store.live_stats()):
            assert payload["faults"]["injected_corruption"] == 1
            assert payload["backend"] == "memory"

    def test_identical_seeds_inject_identically(self):
        # The reproducible-chaos contract: same plan, same operation
        # sequence, same faults.
        def run(seed):
            store = FaultyStore(MemoryStore(),
                                parse_fault_spec(f"error=0.4,seed={seed}"))
            outcomes = []
            for index in range(32):
                try:
                    store.put("envelope", FP, {"i": index})
                    outcomes.append("ok")
                except OSError:
                    outcomes.append("fault")
            return outcomes

        assert run(5) == run(5)
        assert run(5) != run(6)


class TestWrapStore:
    def test_inactive_or_missing_inputs_are_identity(self):
        store = MemoryStore()
        assert wrap_store(None, FaultPlan(error_rate=1.0)) == (None, None)
        assert wrap_store(store, None) == (store, None)
        assert wrap_store(store, FaultPlan(seed=9)) == (store, None)

    def test_active_plan_wraps_and_exposes_the_injector(self):
        store = MemoryStore()
        wrapped, injector = wrap_store(store, FaultPlan(error_rate=1.0))
        assert isinstance(wrapped, FaultyStore)
        assert wrapped.inner is store
        assert injector is wrapped.injector
