"""End-to-end attack simulations: every vector succeeds on the unprotected BPU
and is defeated (or reduced to chance) by STBPU."""

import pytest

from repro.bpu.protections import make_unprotected_baseline
from repro.core.monitoring import MonitorConfig
from repro.core.stbpu import make_stbpu_skl
from repro.security.attacks import (
    BPUDenialOfService,
    BTBEvictionSideChannel,
    BTBReuseSideChannel,
    PHTReuseSideChannel,
    RSBOverflowAttack,
    SpectreRSBInjection,
    SpectreV2Injection,
    TransientTrojanAttack,
)


def _unprotected():
    return make_unprotected_baseline()


def _protected():
    return make_stbpu_skl(seed=5)


class TestTargetInjection:
    def test_spectre_v2_succeeds_only_without_stbpu(self):
        baseline = SpectreV2Injection(_unprotected(), seed=1).run(attempts=150)
        protected = SpectreV2Injection(_protected(), seed=1).run(attempts=150)
        assert baseline.success and baseline.success_metric > 0.9
        assert not protected.success
        assert protected.success_metric == 0.0

    def test_spectre_rsb_succeeds_only_without_stbpu(self):
        baseline = SpectreRSBInjection(_unprotected(), seed=1).run(attempts=150)
        protected = SpectreRSBInjection(_protected(), seed=1).run(attempts=150)
        assert baseline.success
        assert not protected.success

    def test_transient_trojan_blocked_by_full_address_remapping(self):
        baseline = TransientTrojanAttack(_unprotected(), seed=2).run(trials=100)
        protected = TransientTrojanAttack(_protected(), seed=2).run(trials=100)
        assert baseline.success and baseline.success_metric > 0.9
        assert not protected.success


class TestSideChannels:
    def test_btb_reuse_side_channel(self):
        baseline = BTBReuseSideChannel(_unprotected(), seed=3).run(trials=120)
        protected = BTBReuseSideChannel(_protected(), seed=3).run(trials=120)
        assert baseline.success_metric > 0.9
        assert protected.success_metric < 0.7
        assert baseline.success and not protected.success

    def test_pht_reuse_side_channel_leak_is_reduced(self):
        baseline = PHTReuseSideChannel(_unprotected(), seed=3).run(secret_bits=96)
        protected = PHTReuseSideChannel(_protected(), seed=3).run(secret_bits=96)
        # The shared hybrid predictor adds noise (the 2-level component may
        # provide the probe prediction), so the leak is strong but not perfect.
        assert baseline.success_metric >= 0.65
        assert protected.success_metric < baseline.success_metric

    def test_btb_eviction_side_channel(self):
        baseline = BTBEvictionSideChannel(_unprotected(), seed=4).run(trials=40)
        protected = BTBEvictionSideChannel(_protected(), seed=4).run(trials=40)
        assert baseline.success_metric > 0.85
        assert protected.success_metric < 0.75

    def test_rsb_overflow_poisoning(self):
        baseline = RSBOverflowAttack(_unprotected(), seed=4).run(trials=30)
        protected = RSBOverflowAttack(_protected(), seed=4).run(trials=30)
        assert baseline.success
        assert not protected.success


class TestDenialOfService:
    def test_targeted_eviction_dos_requires_known_mapping(self):
        baseline = BPUDenialOfService(_unprotected(), seed=5).run(
            rounds=15, attacker_branches_per_round=256)
        protected = BPUDenialOfService(_protected(), seed=5).run(
            rounds=15, attacker_branches_per_round=256)
        assert baseline.success_metric > 0.5
        assert protected.success_metric < baseline.success_metric / 2


class TestRerandomizationUnderAttack:
    def test_sustained_attack_triggers_rerandomization_before_success(self):
        # Thresholds scaled down in proportion to the shortened attack, so the
        # defence fires within the simulated event budget.
        config = MonitorConfig(misprediction_threshold=50, eviction_threshold=50,
                               direction_misprediction_threshold=None)
        model = make_stbpu_skl(monitor_config=config, seed=6)
        outcome = SpectreV2Injection(model, seed=6).run(attempts=300)
        assert not outcome.success
        assert outcome.observation.rerandomizations >= 1
        # The analytical requirement: events needed for success far exceed the
        # threshold at which the token is refreshed.
        assert outcome.observation.attacker_mispredictions >= config.misprediction_threshold
