"""Tests for the Section VI analytical model, the taxonomy, and GEM."""

import random

import pytest

from repro.bpu.btb import BranchTargetBuffer
from repro.bpu.common import StructureSizes
from repro.core.remapping import STMappingProvider
from repro.core.secret_token import SecretToken
from repro.security import (
    CollisionKind,
    EffectLocus,
    GEMEvictionSetBuilder,
    SKYLAKE_PARAMETERS,
    Structure,
    derive_rerandomization_thresholds,
    eviction_attack_cost,
    injection_attack_cost,
    naive_eviction_set_probability,
    reuse_attack_cost,
    same_address_space_attack_cost,
    summarize_attack_complexities,
    table_rows,
    vectors,
)
from repro.security.parameters import AnalysisParameters


class TestParameters:
    def test_skylake_parameters_match_paper(self):
        params = SKYLAKE_PARAMETERS
        assert params.btb.ways == 8 and params.btb.sets == 512
        assert params.btb.tag_bits == 8 and params.btb.offset_bits == 5
        assert params.pht.sets == 1 << 14 and params.pht.ways == 1
        assert params.rsb.sets == 16

    def test_derived_from_structure_sizes(self):
        params = AnalysisParameters.from_sizes(StructureSizes(btb_sets=256, btb_ways=4))
        assert params.btb.sets == 256 and params.btb.ways == 4
        assert params.btb.entries == 1024


class TestAttackCosts:
    """Reproduce the Section VI-A.5 numbers within a few percent."""

    def test_btb_reuse_mispredictions(self):
        cost = reuse_attack_cost(SKYLAKE_PARAMETERS.btb, coverage=0.5)
        assert cost.expected_mispredictions == pytest.approx(6.9e8, rel=0.05)

    def test_btb_reuse_evictions(self):
        cost = reuse_attack_cost(SKYLAKE_PARAMETERS.btb, coverage=0.5)
        assert cost.expected_evictions == pytest.approx(2 ** 21, rel=0.05)

    def test_pht_reuse_mispredictions_and_no_evictions(self):
        cost = reuse_attack_cost(SKYLAKE_PARAMETERS.pht, coverage=1.0)
        assert cost.expected_mispredictions == pytest.approx(8.38e5, rel=0.05)
        assert cost.expected_evictions == 0.0

    def test_eviction_attack_cost(self):
        cost = eviction_attack_cost(SKYLAKE_PARAMETERS.btb, attack_rate=0.5)
        assert cost.expected_evictions == pytest.approx(5.3e5, rel=0.05)
        assert cost.primed_sets == 256

    def test_injection_cost_is_half_the_target_space(self):
        cost = injection_attack_cost(SKYLAKE_PARAMETERS.btb, success_probability=0.5)
        assert cost.expected_mispredictions == pytest.approx(2 ** 31, rel=0.01)

    def test_same_address_space_matches_reuse(self):
        assert (
            same_address_space_attack_cost(SKYLAKE_PARAMETERS.btb).expected_mispredictions
            == reuse_attack_cost(SKYLAKE_PARAMETERS.btb).expected_mispredictions
        )

    def test_naive_eviction_probability_is_tiny(self):
        assert naive_eviction_set_probability(SKYLAKE_PARAMETERS.btb) == pytest.approx(
            1.0 / 512 ** 7
        )

    def test_summary_picks_cheapest_attacks(self):
        summary = summarize_attack_complexities()
        assert summary.lowest_misprediction_complexity == summary.pht_reuse_mispredictions
        assert summary.lowest_eviction_complexity == summary.btb_eviction_evictions

    def test_threshold_derivation_matches_paper_at_r005(self):
        config = derive_rerandomization_thresholds(r=0.05)
        assert config.misprediction_threshold == pytest.approx(4.15e4, rel=0.05)
        assert config.eviction_threshold == pytest.approx(2.65e4, rel=0.05)

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            reuse_attack_cost(SKYLAKE_PARAMETERS.btb, coverage=0.0)
        with pytest.raises(ValueError):
            eviction_attack_cost(SKYLAKE_PARAMETERS.btb, attack_rate=2.0)
        with pytest.raises(ValueError):
            injection_attack_cost(SKYLAKE_PARAMETERS.btb, success_probability=0.0)


class TestTaxonomy:
    def test_twelve_vectors_cover_table_i(self):
        assert len(table_rows()) == 12

    def test_pht_eviction_cells_are_impossible(self):
        impossible = vectors(structure=Structure.PHT, collision=CollisionKind.EVICTION)
        assert len(impossible) == 2
        assert all(not vector.possible for vector in impossible)

    def test_queries_filter_on_all_axes(self):
        away_reuse = vectors(collision=CollisionKind.REUSE, locus=EffectLocus.AWAY,
                             only_possible=True)
        assert {vector.structure for vector in away_reuse} == {
            Structure.BTB, Structure.PHT, Structure.RSB
        }
        assert all(vector.locus is EffectLocus.AWAY for vector in away_reuse)

    def test_every_possible_vector_names_a_mitigation(self):
        for vector in vectors(only_possible=True):
            assert vector.primary_mitigation.value != "not applicable"
            assert vector.steps


class TestGEM:
    #: A scaled-down BTB keeps the group-elimination search fast in tests.
    _SMALL = StructureSizes(btb_sets=64, btb_ways=4)

    def test_gem_builds_eviction_set_on_deterministic_btb(self):
        btb = BranchTargetBuffer(self._SMALL)
        builder = GEMEvictionSetBuilder(btb, rng=random.Random(1))
        result = builder.build(victim_address=0x40_0123, max_rounds=256)
        assert result.success
        assert len(result.eviction_set) <= btb.way_count * 2
        assert result.stats.installs > 0
        assert result.stats.rounds > 0

    def test_rerandomization_destroys_gem_progress(self):
        """A GEM-built eviction set stops working once the ST is re-randomized.

        Group testing does not need to know the mapping, so GEM can build a
        set even against a keyed BTB — which is exactly why STBPU couples the
        keyed mapping with event-triggered re-randomization: the evictions the
        search generates exhaust the threshold and the refreshed token makes
        the painstakingly built set useless.
        """
        victim = 0x40_0123
        mapping = STMappingProvider(SecretToken.from_halves(0xABCD, 0x1234), self._SMALL)
        keyed_btb = BranchTargetBuffer(self._SMALL, mapping)
        builder = GEMEvictionSetBuilder(keyed_btb, rng=random.Random(1))
        result = builder.build(victim, max_rounds=256)
        assert result.success
        # The analytical model says this search triggers many evictions —
        # far more than the re-randomization threshold would allow.
        assert result.stats.evictions_triggered > keyed_btb.entry_count

        def still_evicts(eviction_set: list[int]) -> bool:
            keyed_btb.update(victim, victim + 0x40)
            for address in eviction_set:
                keyed_btb.update(address, address + 0x40)
            return not keyed_btb.contains(victim)

        assert still_evicts(result.eviction_set)
        # ST re-randomization: the same addresses now map elsewhere.
        mapping.set_token(SecretToken.from_halves(0x5EED, 0x9999))
        assert not still_evicts(result.eviction_set)
