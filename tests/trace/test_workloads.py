"""Tests for the workload-profile catalogue."""

import pytest

from repro.trace.workloads import (
    ALL_WORKLOADS,
    APPLICATION_WORKLOADS,
    GEM5_SINGLE_WORKLOADS,
    GEM5_SMT_PAIRS,
    SPEC2017_WORKLOADS,
    WorkloadProfile,
    get_workload,
    list_workloads,
)


class TestCatalogue:
    def test_paper_workload_counts(self):
        # The paper uses 23 SPEC traces and 12+ application scenarios in Figure 3.
        assert len(SPEC2017_WORKLOADS) == 23
        assert len(APPLICATION_WORKLOADS) >= 12
        assert len(ALL_WORKLOADS) == len(SPEC2017_WORKLOADS) + len(APPLICATION_WORKLOADS)

    def test_gem5_selections_reference_known_workloads(self):
        assert len(GEM5_SINGLE_WORKLOADS) == 18
        for name in GEM5_SINGLE_WORKLOADS:
            assert name in ALL_WORKLOADS
        assert len(GEM5_SMT_PAIRS) == 31
        for a, b in GEM5_SMT_PAIRS:
            assert a in ALL_WORKLOADS and b in ALL_WORKLOADS

    def test_get_workload_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="unknown workload"):
            get_workload("nonexistent.workload")

    def test_list_workloads_by_category(self):
        spec = list_workloads("spec")
        apps = list_workloads("application")
        assert set(spec) == set(SPEC2017_WORKLOADS)
        assert set(apps) == set(APPLICATION_WORKLOADS)
        assert list_workloads() == sorted(spec + apps)


class TestProfileValidation:
    def _kwargs(self):
        return dict(
            name="x", category="spec", static_conditional_sites=10,
            static_indirect_sites=2, static_call_sites=2, static_direct_sites=2,
            conditional_fraction=0.7, indirect_fraction=0.05, call_fraction=0.1,
            biased_site_fraction=0.6, patterned_site_fraction=0.2,
            random_site_entropy=0.2, indirect_targets_mean=2.0,
            indirect_history_correlated=True, call_depth_mean=8.0,
            context_switch_interval=1000, syscall_interval=1000,
            kernel_branch_burst=10, interrupt_interval=1000,
            co_resident_contexts=1, shared_program_image=False,
        )

    def test_valid_profile_constructs(self):
        assert WorkloadProfile(**self._kwargs()).name == "x"

    def test_dynamic_mix_must_not_exceed_one(self):
        kwargs = self._kwargs()
        kwargs.update(conditional_fraction=0.9, indirect_fraction=0.2)
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)

    def test_site_mix_must_not_exceed_one(self):
        kwargs = self._kwargs()
        kwargs.update(biased_site_fraction=0.9, patterned_site_fraction=0.3)
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)

    def test_contexts_must_be_positive(self):
        kwargs = self._kwargs()
        kwargs.update(co_resident_contexts=0)
        with pytest.raises(ValueError):
            WorkloadProfile(**kwargs)

    def test_all_profiles_have_sane_fractions(self):
        for profile in ALL_WORKLOADS.values():
            assert 0 < profile.conditional_fraction < 1
            assert profile.branch_count > 0
            assert profile.static_conditional_sites > 0
