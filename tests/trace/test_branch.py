"""Tests for the branch-record data model."""

import pytest

from repro.trace.branch import (
    STORED_TARGET_MASK,
    VIRTUAL_ADDRESS_MASK,
    BranchRecord,
    BranchType,
    EventKind,
    PrivilegeMode,
    Trace,
    TraceEvent,
    merge_round_robin,
)


def _branch(ip=0x1000, target=0x2000, taken=True, btype=BranchType.DIRECT_JUMP, ctx=0):
    return BranchRecord(ip=ip, target=target, taken=taken, branch_type=btype, context_id=ctx)


class TestBranchType:
    def test_call_classification(self):
        assert BranchType.DIRECT_CALL.is_call
        assert BranchType.INDIRECT_CALL.is_call
        assert not BranchType.RETURN.is_call

    def test_indirect_classification(self):
        assert BranchType.INDIRECT_JUMP.is_indirect
        assert BranchType.RETURN.is_indirect
        assert not BranchType.CONDITIONAL.is_indirect

    def test_direct_and_conditional(self):
        assert BranchType.CONDITIONAL.is_direct
        assert BranchType.CONDITIONAL.is_conditional
        assert not BranchType.INDIRECT_CALL.is_direct


class TestBranchRecord:
    def test_addresses_masked_to_48_bits(self):
        record = _branch(ip=(1 << 60) | 0x1234, target=(1 << 55) | 0x5678)
        assert record.ip == 0x1234
        assert record.target == 0x5678
        assert record.ip <= VIRTUAL_ADDRESS_MASK

    def test_fall_through_and_stored_target(self):
        record = _branch(ip=0xABC0, target=0x1_2345_6789)
        assert record.fall_through == 0xABC4
        assert record.stored_target == 0x1_2345_6789 & STORED_TARGET_MASK

    def test_with_context_changes_only_context(self):
        record = _branch(ctx=1)
        moved = record.with_context(7, PrivilegeMode.KERNEL)
        assert moved.context_id == 7
        assert moved.mode is PrivilegeMode.KERNEL
        assert moved.ip == record.ip and moved.target == record.target


class TestTrace:
    def test_counts_and_iteration(self):
        trace = Trace(name="t")
        trace.append(_branch())
        trace.append(TraceEvent(EventKind.CONTEXT_SWITCH, context_id=2))
        trace.append(_branch(btype=BranchType.CONDITIONAL, taken=False))
        assert len(trace) == 3
        assert trace.branch_count == 2
        assert trace.event_count == 1
        assert trace.context_ids == {0, 2}

    def test_fraction_helpers(self):
        trace = Trace()
        trace.append(_branch(btype=BranchType.CONDITIONAL, taken=True))
        trace.append(_branch(btype=BranchType.CONDITIONAL, taken=False))
        trace.append(_branch(btype=BranchType.DIRECT_JUMP, taken=True))
        assert trace.conditional_fraction() == pytest.approx(2 / 3)
        assert trace.taken_fraction() == pytest.approx(2 / 3)

    def test_empty_trace_fractions_are_zero(self):
        trace = Trace()
        assert trace.conditional_fraction() == 0.0
        assert trace.taken_fraction() == 0.0


class TestMergeRoundRobin:
    def test_preserves_all_items(self):
        a = Trace(name="a")
        b = Trace(name="b")
        for i in range(10):
            a.append(_branch(ip=0x1000 + i * 4, ctx=0))
        for i in range(25):
            b.append(_branch(ip=0x9000 + i * 4, ctx=1))
        merged = merge_round_robin([a, b], quantum=4)
        assert merged.branch_count == 35
        assert merged.context_ids == {0, 1}

    def test_interleaving_respects_quantum(self):
        a = Trace()
        b = Trace()
        for i in range(8):
            a.append(_branch(ctx=0))
            b.append(_branch(ctx=1))
        merged = merge_round_robin([a, b], quantum=2)
        contexts = [item.context_id for item in merged.branches()]
        assert contexts[:4] == [0, 0, 1, 1]

    def test_rejects_non_positive_quantum(self):
        with pytest.raises(ValueError):
            merge_round_robin([Trace()], quantum=0)
