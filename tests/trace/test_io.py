"""Tests for trace serialization."""

import json

import pytest

from repro.trace.branch import BranchRecord, BranchType, EventKind, Trace, TraceEvent
from repro.trace.io import read_trace, write_trace
from repro.trace.synthetic import generate_trace


class TestRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        trace = generate_trace("557.xz", seed=4, branch_count=800)
        path = tmp_path / "trace.jsonl"
        write_trace(trace, path)
        loaded = read_trace(path)
        assert loaded.name == trace.name
        assert len(loaded) == len(trace)
        for original, reloaded in zip(trace, loaded):
            if isinstance(original, BranchRecord):
                assert isinstance(reloaded, BranchRecord)
                assert (original.ip, original.target, original.taken,
                        original.branch_type, original.context_id, original.mode) == (
                    reloaded.ip, reloaded.target, reloaded.taken,
                    reloaded.branch_type, reloaded.context_id, reloaded.mode)
            else:
                assert isinstance(reloaded, TraceEvent)
                assert original.kind == reloaded.kind

    def test_header_records_item_count(self, tmp_path):
        trace = Trace(name="tiny")
        trace.append(TraceEvent(EventKind.INTERRUPT, context_id=1))
        path = tmp_path / "t.jsonl"
        write_trace(trace, path)
        header = json.loads(path.read_text().splitlines()[0])
        assert header == {"kind": "header", "name": "tiny", "items": 1}


class TestErrors:
    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "branch", "ip": 1, "target": 2, "taken": true, '
                        '"type": "direct_jump", "context": 0, "mode": "user"}\n')
        with pytest.raises(ValueError, match="header"):
            read_trace(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad2.jsonl"
        path.write_text('{"kind": "header", "name": "x", "items": 1}\n{"kind": "mystery"}\n')
        with pytest.raises(ValueError, match="unknown record kind"):
            read_trace(path)

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad3.jsonl"
        path.write_text('{"kind": "header", "name": "x", "items": 5}\n')
        with pytest.raises(ValueError, match="declares 5 items"):
            read_trace(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_trace(path)
