"""Tests for the synthetic trace generator."""

import pytest

from repro.trace.branch import BranchType, EventKind, PrivilegeMode
from repro.trace.synthetic import SyntheticTraceGenerator, generate_trace


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace("505.mcf", seed=5, branch_count=1_500)
        b = generate_trace("505.mcf", seed=5, branch_count=1_500)
        assert len(a) == len(b)
        for x, y in zip(a.branches(), b.branches()):
            assert (x.ip, x.target, x.taken, x.branch_type) == (y.ip, y.target, y.taken, y.branch_type)

    def test_different_seeds_differ(self):
        a = generate_trace("505.mcf", seed=1, branch_count=1_500)
        b = generate_trace("505.mcf", seed=2, branch_count=1_500)
        pairs = list(zip(a.branches(), b.branches()))
        assert any(x.taken != y.taken or x.ip != y.ip for x, y in pairs)


class TestTraceShape:
    def test_branch_count_close_to_requested(self):
        trace = generate_trace("503.bwaves", seed=0, branch_count=3_000)
        assert 3_000 <= trace.branch_count <= 3_400

    def test_contains_all_major_branch_types(self, small_mcf_trace):
        types = {branch.branch_type for branch in small_mcf_trace.branches()}
        assert BranchType.CONDITIONAL in types
        assert BranchType.DIRECT_CALL in types
        assert BranchType.RETURN in types
        assert BranchType.INDIRECT_JUMP in types or BranchType.INDIRECT_CALL in types

    def test_taken_fraction_is_realistic(self, small_mcf_trace):
        assert 0.5 < small_mcf_trace.taken_fraction() < 0.85

    def test_kernel_branches_present_after_syscalls(self, small_apache_trace):
        kernel = [b for b in small_apache_trace.branches() if b.mode is PrivilegeMode.KERNEL]
        assert kernel, "application workloads must include kernel-mode branches"

    def test_multi_context_workload_emits_context_switches(self, small_apache_trace):
        kinds = {event.kind for event in small_apache_trace.events()}
        assert EventKind.CONTEXT_SWITCH in kinds
        assert EventKind.MODE_SWITCH_ENTER_KERNEL in kinds
        user_contexts = {
            b.context_id for b in small_apache_trace.branches()
            if b.mode is PrivilegeMode.USER
        }
        assert len(user_contexts) > 1

    def test_unconditional_branches_are_taken(self, small_mcf_trace):
        for branch in small_mcf_trace.branches():
            if not branch.branch_type.is_conditional:
                assert branch.taken

    def test_conditional_not_taken_targets_are_fall_through(self, small_mcf_trace):
        for branch in small_mcf_trace.branches():
            if branch.branch_type.is_conditional and not branch.taken:
                assert branch.target == branch.ip + 4


class TestGeneratorApi:
    def test_accepts_profile_name_or_object(self):
        from repro.trace.workloads import get_workload
        by_name = SyntheticTraceGenerator("541.leela", seed=3).generate(500)
        by_profile = SyntheticTraceGenerator(get_workload("541.leela"), seed=3).generate(500)
        assert by_name.branch_count == by_profile.branch_count

    def test_unknown_workload_raises(self):
        with pytest.raises(KeyError):
            SyntheticTraceGenerator("not-a-workload")

    def test_shared_image_contexts_share_addresses(self):
        trace = generate_trace("apache2_prefork_c64", seed=2, branch_count=6_000)
        per_context: dict[int, set[int]] = {}
        for branch in trace.branches():
            if branch.mode is PrivilegeMode.USER:
                per_context.setdefault(branch.context_id, set()).add(branch.ip)
        contexts = [ips for ips in per_context.values() if len(ips) > 20]
        assert len(contexts) >= 2
        first, second = contexts[0], contexts[1]
        # Prefork workers run the same image, so their branch sites overlap.
        assert first & second
