"""Tests for the metrics registry: instrument semantics, label handling,
thread safety, gauge callbacks, and deterministic Prometheus rendering."""

import threading

import pytest

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestInstruments:
    def test_counter_accumulates_per_label_set(self):
        registry = MetricsRegistry()
        registry.inc("hits_total")
        registry.inc("hits_total", 2)
        registry.inc("hits_total", op="get")
        snapshot = registry.snapshot()
        samples = {tuple(sorted(s["labels"].items())): s["value"]
                   for s in snapshot["hits_total"]["samples"]}
        assert samples[()] == 3.0
        assert samples[(("op", "get"),)] == 1.0

    def test_negative_counter_delta_is_mirrored_verbatim(self):
        # The store bridge forwards hit→miss reclassification (-1/+1)
        # exactly; the registry must not clamp it.
        registry = MetricsRegistry()
        registry.inc("hits_total", 5)
        registry.inc("hits_total", -1)
        assert registry.snapshot()["hits_total"]["samples"][0]["value"] == 4.0

    def test_gauge_overwrites(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 7)
        registry.set_gauge("depth", 3)
        assert registry.snapshot()["depth"]["samples"][0]["value"] == 3.0

    def test_set_counter_is_absolute(self):
        registry = MetricsRegistry()
        registry.set_counter("cache_hits_total", 10)
        registry.set_counter("cache_hits_total", 12)
        family = registry.snapshot()["cache_hits_total"]
        assert family["type"] == "counter"
        assert family["samples"][0]["value"] == 12.0

    def test_histogram_buckets_and_sum(self):
        registry = MetricsRegistry()
        registry.observe("seconds", 0.001)   # bucket 0 (<= 0.005)
        registry.observe("seconds", 0.05)    # bucket 2 (<= 0.1)
        registry.observe("seconds", 99.0)    # overflow
        family = registry.snapshot()["seconds"]
        assert family["buckets"] == list(DEFAULT_BUCKETS)
        sample = family["samples"][0]["value"]
        assert sample["counts"][0] == 1
        assert sample["counts"][2] == 1
        assert sample["counts"][-1] == 1
        assert sample["sum"] == pytest.approx(99.051)

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.inc("thing_total")
        with pytest.raises(ValueError, match="counter"):
            registry.set_gauge("thing_total", 1)
        with pytest.raises(ValueError, match="counter"):
            registry.observe("thing_total", 1.0)

    def test_reset_clears_samples_but_keeps_callbacks(self):
        registry = MetricsRegistry()
        registry.register_callback(lambda: registry.set_gauge("live", 1))
        registry.inc("stale_total")
        registry.reset()
        snapshot = registry.snapshot()
        assert "stale_total" not in snapshot
        assert snapshot["live"]["samples"][0]["value"] == 1.0


class TestCallbacks:
    def test_callbacks_refresh_before_every_snapshot(self):
        registry = MetricsRegistry()
        state = {"value": 0}
        registry.register_callback(
            lambda: registry.set_gauge("depth", state["value"]))
        state["value"] = 5
        assert registry.snapshot()["depth"]["samples"][0]["value"] == 5.0
        state["value"] = 9
        assert registry.snapshot()["depth"]["samples"][0]["value"] == 9.0

    def test_raising_callback_is_counted_not_fatal(self):
        registry = MetricsRegistry()

        def broken():
            raise RuntimeError("gauge source gone")

        registry.register_callback(broken)
        registry.inc("ok_total")
        snapshot = registry.snapshot()
        assert snapshot["ok_total"]["samples"][0]["value"] == 1.0
        errors = snapshot["repro_obs_callback_errors_total"]
        assert errors["samples"][0]["value"] == 1.0

    def test_callback_may_mutate_the_registry(self):
        # The lock is a leaf: callbacks run outside it and may call the
        # public mutators without deadlocking.
        registry = MetricsRegistry()
        registry.register_callback(lambda: registry.inc("scrapes_total"))
        registry.snapshot()
        registry.snapshot()
        assert registry.snapshot()["scrapes_total"]["samples"][0]["value"] \
            == 3.0


class TestThreadSafety:
    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        threads, per_thread = 8, 500

        def hammer(index):
            for _ in range(per_thread):
                registry.inc("hammer_total")
                registry.observe("hammer_seconds", 0.01,
                                 worker=str(index))

        pool = [threading.Thread(target=hammer, args=(i,))
                for i in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        snapshot = registry.snapshot()
        assert snapshot["hammer_total"]["samples"][0]["value"] \
            == threads * per_thread
        total = sum(sum(s["value"]["counts"])
                    for s in snapshot["hammer_seconds"]["samples"])
        assert total == threads * per_thread


class TestRendering:
    def test_two_renders_of_identical_state_are_byte_identical(self):
        registry = MetricsRegistry()
        registry.inc("b_total", route="/x", method="GET")
        registry.inc("a_total")
        registry.observe("lat_seconds", 0.3)
        assert registry.render_prometheus() == registry.render_prometheus()

    def test_prometheus_text_shape(self):
        registry = MetricsRegistry()
        registry.inc("repro_store_hits_total", 4)
        registry.set_gauge("repro_jobs_queue_depth", 2)
        registry.observe("op_seconds", 0.05)
        text = registry.render_prometheus()
        assert "# HELP repro_store_hits_total Store reads resolved from " \
            "cache." in text
        assert "# TYPE repro_store_hits_total counter" in text
        assert "repro_store_hits_total 4" in text
        assert "# TYPE repro_jobs_queue_depth gauge" in text
        assert "repro_jobs_queue_depth 2" in text
        # Histogram: cumulative buckets, +Inf, _sum and _count.
        assert 'op_seconds_bucket{le="0.1"} 1' in text
        assert 'op_seconds_bucket{le="+Inf"} 1' in text
        assert "op_seconds_sum 0.05" in text
        assert "op_seconds_count 1" in text
        assert text.endswith("\n")

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("odd_total", detail='say "hi"\nplease\\now')
        text = registry.render_prometheus()
        assert r'detail="say \"hi\"\nplease\\now"' in text

    def test_families_and_samples_sort_deterministically(self):
        registry = MetricsRegistry()
        registry.inc("z_total", which="b")
        registry.inc("z_total", which="a")
        registry.inc("a_total")
        text = registry.render_prometheus()
        assert text.index("a_total") < text.index("z_total")
        assert text.index('which="a"') < text.index('which="b"')
