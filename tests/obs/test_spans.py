"""Tests for span tracing: tree structure, deterministic identities, the
durations-stripped byte-identity guarantee, and the phase/format helpers."""

import json

from repro.engine import EngineRunner, ExperimentScale, SimulationGrid
from repro.obs.spans import (
    NULL_TRACER,
    OBSTRACE_SCHEMA,
    SpanTracer,
    format_tree,
    phase_seconds,
    span_id,
    strip_durations,
)
from repro.store.memory import MemoryStore

FINGERPRINT = "ab" * 32


def _jobs():
    scale = ExperimentScale(branch_count=600, warmup_branches=60, seed=7)
    return SimulationGrid(kind="trace", models=("baseline",),
                          workloads=("505.mcf",), scale=scale).jobs()


class TestSpanTracer:
    def test_nesting_order_and_attrs(self):
        tracer = SpanTracer(FINGERPRINT, name="run", attrs={"kind": "test"})
        with tracer.span("outer", label="a") as outer:
            with tracer.span("inner"):
                pass
            outer.attrs.update(late=True)
        tracer.add("leaf", seconds=0.25, position=0)
        payload = tracer.payload()
        assert payload["schema"] == OBSTRACE_SCHEMA
        assert payload["fingerprint"] == FINGERPRINT
        root = payload["root"]
        assert root["name"] == "run" and root["attrs"] == {"kind": "test"}
        outer_node, leaf = root["children"]
        assert outer_node["name"] == "outer"
        assert outer_node["attrs"] == {"label": "a", "late": True}
        assert outer_node["children"][0]["name"] == "inner"
        assert leaf["name"] == "leaf" and leaf["seconds"] == 0.25

    def test_span_ids_are_deterministic_functions_of_structure(self):
        def build():
            tracer = SpanTracer(FINGERPRINT)
            with tracer.span("phase"):
                tracer.add("step")
            return tracer.payload()

        first, second = build(), build()
        assert first["root"]["id"] == second["root"]["id"]
        assert first["root"]["children"][0]["id"] \
            == second["root"]["children"][0]["id"]
        # Identity = sha256(fingerprint + "/" + tree path), truncated.
        assert first["root"]["id"] == span_id(FINGERPRINT, "run")
        assert first["root"]["children"][0]["id"] \
            == span_id(FINGERPRINT, "run/0:phase")

    def test_different_fingerprints_give_different_ids(self):
        assert span_id("aa" * 32, "run") != span_id("bb" * 32, "run")

    def test_strip_durations_removes_every_seconds_field(self):
        tracer = SpanTracer(FINGERPRINT)
        with tracer.span("phase"):
            tracer.add("step", seconds=1.5)
        stripped = json.dumps(strip_durations(tracer.payload()))
        assert "seconds" not in stripped

    def test_null_tracer_is_inert(self):
        with NULL_TRACER.span("anything", attr=1) as node:
            node.attrs.update(more=2)
        NULL_TRACER.add("leaf", seconds=9.0)


class TestEngineTraces:
    def test_runner_span_tree_shape(self):
        tracer = SpanTracer(FINGERPRINT, name="scenario")
        EngineRunner(store=MemoryStore()).run_jobs(_jobs(), tracer=tracer)
        payload = tracer.payload()
        names = [child["name"] for child in payload["root"]["children"]]
        assert names == ["partition", "dispatch", "execute", "merge"]
        partition = payload["root"]["children"][0]
        assert partition["attrs"] == {"cached": 0, "jobs": 1, "missing": 1}
        merge = payload["root"]["children"][-1]
        job_leaves = [c for c in merge["children"] if c["name"] == "job"]
        assert len(job_leaves) == 1
        assert job_leaves[0]["attrs"]["source"] == "executed"

    def test_replays_are_byte_identical_once_durations_stripped(self):
        # Same jobs against equivalent (fresh) store state: structure,
        # attrs and ids must match exactly; only the seconds may differ.
        def traced_run():
            tracer = SpanTracer(FINGERPRINT, name="scenario")
            EngineRunner(store=MemoryStore()).run_jobs(_jobs(),
                                                       tracer=tracer)
            return json.dumps(strip_durations(tracer.payload()),
                              sort_keys=True)

        assert traced_run() == traced_run()

    def test_warm_run_traces_cached_partition(self):
        store = MemoryStore()
        EngineRunner(store=store).run_jobs(_jobs())
        tracer = SpanTracer(FINGERPRINT, name="scenario")
        EngineRunner(store=store).run_jobs(_jobs(), tracer=tracer)
        payload = tracer.payload()
        partition = payload["root"]["children"][0]
        assert partition["attrs"] == {"cached": 1, "jobs": 1, "missing": 0}
        merge = payload["root"]["children"][-1]
        job_leaves = [c for c in merge["children"] if c["name"] == "job"]
        assert job_leaves[0]["attrs"]["source"] == "store"


class TestHelpers:
    def _payload(self):
        tracer = SpanTracer(FINGERPRINT, name="run")
        with tracer.span("execute"):
            tracer.add("job", seconds=0.5)
            tracer.add("job", seconds=0.25)
        return tracer.payload()

    def test_phase_seconds_totals_by_name(self):
        phases = phase_seconds(self._payload())
        assert phases["job"] == 0.75
        assert phases["execute"] >= 0.0
        assert "run" not in phases  # root excluded

    def test_format_tree_renders_every_node(self):
        text = format_tree(self._payload())
        assert f"trace {FINGERPRINT}" in text
        assert "execute" in text and text.count("job [") == 2
