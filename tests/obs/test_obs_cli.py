"""Tests for the ``repro obs`` CLI: metrics snapshots, trace rendering from
a store directory, and the cross-trace ``top`` profile."""

import hashlib

from repro.cli import main
from repro.obs import metrics as obs_metrics
from repro.obs.spans import SpanTracer
from repro.store.base import OBSTRACE_NAMESPACE
from repro.store.disk import DiskStore


def _fingerprint(seed: str) -> str:
    return hashlib.sha256(seed.encode()).hexdigest()


def _store_with_traces(tmp_path, count=2):
    store = DiskStore(str(tmp_path / "store"))
    for index in range(count):
        fingerprint = _fingerprint(f"trace-{index}")
        tracer = SpanTracer(fingerprint, name="scenario",
                            attrs={"scenario": f"scn-{index}"})
        with tracer.span("execute"):
            tracer.add("job", seconds=0.1 * (index + 1))
        store.put(OBSTRACE_NAMESPACE, fingerprint, tracer.payload())
    return store


class TestObsMetrics:
    def test_local_registry_snapshot(self, capsys):
        obs_metrics.inc("repro_store_hits_total", 0)  # ensure one family
        assert main(["obs", "metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_store_hits_total counter" in out


class TestObsTrace:
    def test_renders_tree_and_phases_from_store(self, tmp_path, capsys):
        store = _store_with_traces(tmp_path, count=1)
        fingerprint = next(iter(store.keys(OBSTRACE_NAMESPACE)))
        assert main(["obs", "trace", fingerprint,
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert f"trace {fingerprint}" in out
        assert "execute" in out and "job" in out
        assert "phases:" in out

    def test_json_mode_emits_raw_payload(self, tmp_path, capsys):
        store = _store_with_traces(tmp_path, count=1)
        fingerprint = next(iter(store.keys(OBSTRACE_NAMESPACE)))
        assert main(["obs", "trace", fingerprint, "--json",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert '"schema": "repro.obstrace/v1"' in out
        assert f'"fingerprint": "{fingerprint}"' in out

    def test_missing_trace_fails_with_message(self, tmp_path, capsys):
        _store_with_traces(tmp_path, count=1)
        assert main(["obs", "trace", _fingerprint("absent"),
                     "--store", str(tmp_path / "store")]) != 0
        assert "no trace" in capsys.readouterr().err


class TestObsTop:
    def test_profiles_across_all_stored_traces(self, tmp_path, capsys):
        _store_with_traces(tmp_path, count=3)
        assert main(["obs", "top", "--store", str(tmp_path / "store"),
                     "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "3 trace(s)" in out
        assert "per-phase totals:" in out
        assert "job" in out and "execute" in out
        # --limit bounds the slowest-traces listing, not the totals.
        assert out.count("scn-") == 2

    def test_empty_store_reports_no_traces(self, tmp_path, capsys):
        DiskStore(str(tmp_path / "store"))
        assert main(["obs", "top", "--store", str(tmp_path / "store")]) == 0
        assert "no traces" in capsys.readouterr().out
