"""Tests for :mod:`repro.client` against a live in-process server."""

import email.message
import threading
import urllib.error

import pytest

from repro.client import RETRYABLE_STATUSES, ReproClient, ServeError, Submitted
from repro.faults import FaultInjector, parse_fault_spec
from repro.store import MemoryStore
from repro.store.serve import make_server

SCENARIO = {
    "schema": "repro.scenario/v1",
    "name": "client-test",
    "kind": "trace",
    "models": ["baseline"],
    "workloads": ["505.mcf"],
    "scale": {"branch_count": 500, "warmup_branches": 50, "seed": 13},
}


def _scenario(name, seed):
    data = dict(SCENARIO, name=name)
    data["scale"] = dict(SCENARIO["scale"], seed=seed)
    return data


def _serve(**kwargs):
    instance = make_server(port=0, store=MemoryStore(), **kwargs)
    threading.Thread(target=instance.serve_forever, daemon=True).start()
    host, port = instance.server_address[:2]
    return instance, f"http://{host}:{port}"


@pytest.fixture(scope="module")
def server():
    instance, url = _serve()
    yield instance, url
    instance.shutdown()
    instance.server_close()
    instance.service.close()


@pytest.fixture(scope="module")
def client(server):
    return ReproClient(server[1], poll_interval=0.05)


class TestLifecycle:
    def test_async_submit_wait_result(self, client):
        submitted = client.submit(_scenario("cli-async", 200))
        assert isinstance(submitted, Submitted)
        assert not submitted.completed
        assert submitted.job["state"] in ("queued", "running")
        final = client.wait(submitted.fingerprint, timeout=30)
        assert final["state"] == "done"
        envelope, etag = client.result(submitted.fingerprint)
        assert envelope["result"]["records"]
        assert etag
        # Conditional refetch: 304 comes back as (None, etag).
        assert client.result(submitted.fingerprint, etag=etag) == (None, etag)

    def test_sync_submit_is_complete_on_return(self, client):
        scenario = _scenario("cli-sync", 201)
        submitted = client.submit(scenario, wait=True)
        assert submitted.completed
        assert submitted.cache == "miss"
        assert submitted.envelope["result"]["records"]
        again = client.submit(scenario, wait=True)
        assert again.cache == "hit"
        assert again.etag == submitted.etag

    def test_stream_ends_terminal(self, client):
        submitted = client.submit(_scenario("cli-stream", 202))
        events = list(client.stream(submitted.fingerprint))
        assert events
        assert events[-1]["state"] == "done"

    def test_job_and_info_and_health(self, client):
        submitted = client.submit(_scenario("cli-meta", 203), wait=True)
        assert client.job(submitted.fingerprint)["state"] == "done"
        assert client.info()["schema"] == "repro.serve/v3"
        health = client.health()
        assert health["status"] == "ok"
        assert health["store"]["entries"] >= 1

    def test_metrics_and_trace(self, client):
        submitted = client.submit(_scenario("cli-obs", 205), wait=True)
        text = client.metrics()
        assert "# TYPE repro_http_requests_total counter" in text
        assert "repro_jobs_submitted_total" in text
        trace = client.trace(submitted.fingerprint)
        assert trace["schema"] == "repro.obstrace/v1"
        assert trace["fingerprint"] == submitted.fingerprint

    def test_wait_times_out_client_side(self):
        injector = FaultInjector(parse_fault_spec("hang=wedge,hang_seconds=60"))
        instance, url = _serve(workers=1, job_timeout=60, injector=injector)
        try:
            client = ReproClient(url, poll_interval=0.02)
            submitted = client.submit(_scenario("wedge-client", 204))
            with pytest.raises(TimeoutError, match="still"):
                client.wait(submitted.fingerprint, timeout=0.2)
        finally:
            instance.shutdown()
            instance.server_close()
            instance.service.close()


class TestErrors:
    def test_invalid_scenario_raises_serve_error_with_payload(self, client):
        with pytest.raises(ServeError) as info:
            client.submit({"kind": "nope"})
        assert info.value.status == 400
        assert "invalid scenario" in str(info.value)
        assert info.value.payload["schema"] == "repro.serve/v3"

    def test_cancel_terminal_job_is_a_409(self, client):
        submitted = client.submit(_scenario("cli-cancel", 205), wait=True)
        with pytest.raises(ServeError) as info:
            client.cancel(submitted.fingerprint)
        assert info.value.status == 409

    def test_unknown_job_is_a_404(self, client):
        with pytest.raises(ServeError) as info:
            client.job("9" * 64)
        assert info.value.status == 404

    def test_connection_refused_exhausts_retries(self):
        client = ReproClient("http://127.0.0.1:9", retries=1, backoff=0.0,
                             timeout=1.0)
        with pytest.raises(ServeError) as info:
            client.health()  # health is no-retry: one shot, then ServeError
        assert info.value.status == 0
        with pytest.raises(ServeError, match="transport"):
            client.info()  # retried path: same terminal error after budget

    def test_constructor_rejects_negative_retries(self):
        with pytest.raises(ValueError, match="retries"):
            ReproClient("http://localhost", retries=-1)


class TestRetryPolicy:
    def test_retryable_statuses_cover_queue_and_gateway_pressure(self):
        assert {429, 503, 504} <= RETRYABLE_STATUSES
        assert 400 not in RETRYABLE_STATUSES and 404 not in RETRYABLE_STATUSES

    def test_delay_honours_retry_after(self):
        client = ReproClient("http://localhost", backoff=0.1)
        headers = email.message.Message()
        headers["Retry-After"] = "3"
        error = urllib.error.HTTPError("http://x", 429, "busy", headers, None)
        assert client._delay(1, error) == 3.0
        headers.replace_header("Retry-After", "bogus")
        assert client._delay(2, error) == pytest.approx(0.2)
        assert client._delay(2, None) == pytest.approx(0.2)

    def test_retries_recover_from_a_transient_503(self, server, monkeypatch):
        # Flip the service unhealthy for exactly the first probe of a
        # retried GET: the client must retry and return the healthy answer.
        instance, url = server
        service = instance.service
        real = type(service).healthz
        calls = []

        def flaky(self):
            calls.append(1)
            if len(calls) == 1:
                return False, {"schema": "repro.serve/v3",
                               "status": "degraded"}
            return real(self)

        monkeypatch.setattr(type(service), "healthz", flaky)
        client = ReproClient(url, retries=2, backoff=0.0)
        # /healthz is no-retry by design, so drive the retry loop directly.
        status, _headers, payload = client._request("GET", "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert len(calls) == 2
