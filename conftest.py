"""Repository-level pytest configuration.

Ensures the in-tree ``src`` layout is importable even when the package has not
been pip-installed (useful in offline environments where editable installs
cannot build wheels).
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, str(_SRC))
