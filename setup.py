"""Legacy setup shim.

The project is configured through ``pyproject.toml``; this file exists so the
package can also be installed with ``python setup.py develop`` in offline
environments that lack the ``wheel`` package required for PEP 660 editable
installs.
"""

from setuptools import setup

setup(
    # numpy backs the vector replay backend (repro.sim.vector), the columnar
    # ndarray trace view, and shared-memory trace shipping — a hard runtime
    # dependency, not a transitive assumption.
    install_requires=["numpy>=1.24"],
)
